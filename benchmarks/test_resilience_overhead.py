"""Zero-overhead contract of the fault-injection hook.

The resilience subsystem must cost nothing when no fault plan is
installed: the halo update and the SPMD engine test one module-level
reference (``get_injector() is None``) and take their original paths.
This suite pins that contract:

* with no injector, the traced halo update records no retry/timeout
  metrics and the solver result is bitwise identical to the seed
  behaviour;
* an untraced, uninjected solve never enters the instrumented
  ``_update_traced`` slow path at all;
* wall-clock of the uninjected solve is benchmarked alongside a solve
  with an installed-but-empty plan, so a regression in the hook itself
  (not just in the fault paths) shows up in ``--benchmark-compare``.
"""

from __future__ import annotations

import pytest

from repro.core import build_fsai, pcg
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.dist.halo import HaloSchedule
from repro.instrument import tracing
from repro.matgen import paper_rhs, poisson2d
from repro.mpisim import get_injector
from repro.resilience import FaultPlan, fault_injection

RTOL = 1e-8


@pytest.fixture(scope="module")
def system():
    mat = poisson2d(16)
    part = RowPartition.from_matrix(mat, 4, seed=7)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=3), part)
    return da, b, build_fsai(mat, part)


def test_no_injector_means_no_resilience_metrics(system):
    da, b, pre = system
    assert get_injector() is None
    with tracing() as (_, metrics):
        result = pcg(da, b, precond=pre, rtol=RTOL)
        assert metrics.sum_values("halo.retries") == 0
        assert metrics.sum_values("halo.timeouts") == 0
        assert metrics.sum_values("resilience.stalls") == 0
    assert result.converged


def test_uninjected_untraced_solve_skips_slow_path(system, monkeypatch):
    da, b, pre = system

    def boom(*args, **kwargs):  # pragma: no cover — failure is the signal
        raise AssertionError("hot path entered _update_traced without a tracer/injector")

    monkeypatch.setattr(HaloSchedule, "_update_traced", boom)
    result = pcg(da, b, precond=pre, rtol=RTOL)
    assert result.converged


def test_empty_plan_changes_nothing(system):
    da, b, pre = system
    clean = pcg(da, b, precond=pre, rtol=RTOL)
    with fault_injection(FaultPlan()):
        guarded = pcg(da, b, precond=pre, rtol=RTOL)
    assert guarded.iterations == clean.iterations
    assert guarded.final_residual == clean.final_residual


@pytest.mark.benchmark(group="resilience-overhead")
def test_bench_solve_without_hook(benchmark, system):
    da, b, pre = system
    result = benchmark(lambda: pcg(da, b, precond=pre, rtol=RTOL))
    assert result.converged


@pytest.mark.benchmark(group="resilience-overhead")
def test_bench_solve_with_empty_plan(benchmark, system):
    da, b, pre = system

    def run():
        with fault_injection(FaultPlan()):
            return pcg(da, b, precond=pre, rtol=RTOL)

    result = benchmark(run)
    assert result.converged
