"""Solve-level benchmark trajectory: ``BENCH_solver.json``.

Where ``BENCH_kernels.json`` (PR 2) tracks kernel micro-counters, this suite
records the *end-to-end* solver facts the paper argues about — iterations,
pattern growth, per-rank imbalance, modeled time per machine — for each
preconditioner pattern on a subset of the Table 1 catalog.  Every number is
deterministic (iteration counts and the analytic cost model, no wall
clocks), so the committed artifact is byte-stable across machines and
``scripts/check_bench_regression.py --solver`` can gate it exactly.

Run::

    PYTHONPATH=src python benchmarks/solver_bench.py            # BENCH_solver.json
    PYTHONPATH=src python benchmarks/solver_bench.py --quick    # fewer matrices
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import harness  # noqa: E402 — sibling module, shared caches
from repro.core import check_comm_invariance, imbalance_index  # noqa: E402
from repro.perfmodel import MACHINES  # noqa: E402

#: Catalog subset: small enough for CI, varied enough to show the tradeoff
#: (msdoor / af_shell7 have clear FSAIE iteration reductions).
DEFAULT_MATRICES = ("PFlow_742", "Fault_639", "msdoor", "af_shell7")
QUICK_MATRICES = ("PFlow_742", "msdoor")
METHODS = ("fsai", "fsaie", "comm")
MODEL_MACHINE = "skylake"


def run_solver_suite(
    matrices=DEFAULT_MATRICES,
    *,
    filter_value: float = 0.01,
    dynamic: bool = True,
    quick: bool = False,
) -> dict:
    """Solve every (matrix, method) pair; returns the suite document.

    The ``summary`` mapping is the flat, comparable surface (consumed by
    :meth:`repro.observe.RunReport.from_solver_bench`): iteration counts,
    nnz growth, imbalance and modeled milliseconds per configuration, plus
    a 0/1 communication-invariance flag per matrix.
    """
    if quick:
        matrices = QUICK_MATRICES
    machine = MACHINES[MODEL_MACHINE]
    solver: dict = {}
    summary: dict = {}
    for name in matrices:
        prob = harness.problem(name)
        per_method: dict = {}
        preconds = {}
        for method in METHODS:
            pre = harness.preconditioner(
                name, method=method, line_bytes=machine.cache_line_bytes,
                filter_value=filter_value, dynamic=dynamic,
            )
            result = harness.solve(
                name, method=method, line_bytes=machine.cache_line_bytes,
                filter_value=filter_value, dynamic=dynamic,
            )
            modeled = harness.modeled_time(
                name, machine, method=method,
                filter_value=filter_value, dynamic=dynamic,
            )
            preconds[method] = pre
            per_method[method] = {
                "pattern": pre.name,
                "iterations": result.iterations,
                "converged": bool(result.converged),
                "nnz": int(pre.nnz),
                "nnz_increase_percent": float(pre.nnz_increase_percent),
                "imbalance": float(imbalance_index(pre.nnz_per_rank())),
                "modeled_ms": float(modeled * 1e3),
            }
            summary[f"{name}.{method}.iterations"] = result.iterations
            summary[f"{name}.{method}.nnz"] = int(pre.nnz)
            summary[f"{name}.{method}.modeled_ms"] = float(modeled * 1e3)
        invariant = check_comm_invariance(preconds["fsai"], preconds["comm"])
        summary[f"{name}.comm.invariant"] = int(invariant)
        solver[name] = {
            "rows": prob.mat.nrows,
            "nnz": prob.mat.nnz,
            "ranks": prob.part.nparts,
            "comm_invariant": bool(invariant),
            "methods": per_method,
        }
    return {
        "suite": "solver",
        "config": {
            "matrices": list(matrices),
            "filter": filter_value,
            "dynamic": dynamic,
            "machine": MODEL_MACHINE,
            "rtol": "paper",
            "scale": harness.scale(),
        },
        "solver": solver,
        "summary": summary,
    }


def write_solver_suite(result: dict, path, *, report: bool = True) -> Path:
    """Write the suite JSON (and its ``.report.json`` companion)."""
    path = Path(path)
    path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    if report:
        from repro.observe import RunReport

        RunReport.from_solver_bench(result, label=path.stem).save(
            path.with_suffix(".report.json")
        )
    return path


def format_summary(result: dict) -> str:
    lines = ["solver benchmarks (modeled on %s)" % result["config"]["machine"], ""]
    header = f"{'matrix':<12} {'method':<6} {'iters':>6} {'nnz':>8} {'+nnz%':>7} {'model ms':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, entry in sorted(result["solver"].items()):
        for method in METHODS:
            m = entry["methods"][method]
            lines.append(
                f"{name:<12} {method:<6} {m['iterations']:>6} {m['nnz']:>8} "
                f"{m['nnz_increase_percent']:>7.1f} {m['modeled_ms']:>9.3f}"
            )
        lines.append(
            f"{'':<12} comm invariant: {entry['comm_invariant']} "
            f"({entry['ranks']} ranks)"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_solver.json")
    parser.add_argument("--quick", action="store_true", help="smaller matrix subset")
    parser.add_argument("--filter", type=float, default=0.01)
    args = parser.parse_args(argv)
    result = run_solver_suite(filter_value=args.filter, quick=args.quick)
    print(format_summary(result))
    path = write_solver_suite(result, args.output)
    print(f"\nwritten: {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
