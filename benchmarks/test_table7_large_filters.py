"""Table 7 — dynamic-filter sweep over the large matrix set on Zen 2.

The large-set averages are smaller than the Table 6 ones (the paper finds
12.59% best-filter time improvement vs 16.74% on the 39-matrix set) because
high rank counts mean smaller local problems and relatively larger halos.
"""

from __future__ import annotations

from harness import preconditioner, problem
from repro.perfmodel import ZEN2
from sweep_common import dynamic_sweep_table


def test_table7_large_set_sweep(benchmark):
    summaries = dynamic_sweep_table(
        ZEN2, large=True, title="Table 7 — FSAIE-Comm, dynamic Filter, large set, Zen 2"
    )

    assert summaries["best"].avg_iterations > 0
    assert summaries["best"].avg_time > 0
    # the paper's Table 7: best-filter results are close to Filter=0.01
    assert abs(summaries["best"].avg_time - summaries[0.01].avg_time) < 10.0

    prob = problem("audikw_1", large=True)
    pre = preconditioner("audikw_1", large=True, method="comm", filter_value=0.01)
    benchmark(lambda: pre.apply(prob.b))
