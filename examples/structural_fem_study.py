#!/usr/bin/env python3
"""Structural-mechanics case study: FSAIE-Comm on an assembled FEM problem.

Run:  python examples/structural_fem_study.py

Structural problems are the largest group in the paper's test set.  This
example assembles a genuine 3-D linear-elasticity stiffness matrix (8-node
hexahedra, one clamped face), sweeps the Filter parameter like the paper's
Table 3, and reports modeled time-to-solution on the Skylake machine model.
"""

from __future__ import annotations

from repro import (
    DistMatrix,
    DistVector,
    FilterSpec,
    PAPER_RTOL,
    PrecondOptions,
    RowPartition,
    build_fsai,
    build_fsaie_comm,
    paper_rhs,
    pcg,
)
from repro.analysis import format_table, pct_decrease
from repro.matgen import elasticity3d
from repro.perfmodel import SKYLAKE, estimate_solver_time

FILTERS = (0.01, 0.05, 0.1, 0.2)
THREADS = 8  # the paper's default hybrid configuration


def main() -> None:
    # a clamped cantilever block: 6x4x4 hex elements, 3 DOF per node
    mat = elasticity3d(6, 4, 4, young=1.0, poisson=0.3)
    print(f"stiffness matrix: {mat.nrows} DOFs, {mat.nnz} nonzeros "
          f"({mat.nnz / mat.nrows:.0f} per row)")

    part = RowPartition.from_matrix(mat, nparts=6)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=1), part)

    fsai = build_fsai(mat, part)
    res0 = pcg(da, b, precond=fsai.apply, rtol=PAPER_RTOL)
    t0 = estimate_solver_time(
        res0.iterations, da, fsai, SKYLAKE, threads_per_process=THREADS
    )
    print(f"\nFSAI baseline: {res0.iterations} iterations, modeled {t0 * 1e3:.2f} ms\n")

    rows = []
    for f in FILTERS:
        for dynamic in (False, True):
            opts = PrecondOptions(filter=FilterSpec(f, dynamic=dynamic))
            pre = build_fsaie_comm(mat, part, opts)
            res = pcg(da, b, precond=pre.apply, rtol=PAPER_RTOL)
            t = estimate_solver_time(
                res.iterations, da, pre, SKYLAKE, threads_per_process=THREADS
            )
            rows.append(
                [
                    f"{f} ({'dynamic' if dynamic else 'static'})",
                    res.iterations,
                    f"{pre.nnz_increase_percent:.1f}",
                    f"{t * 1e3:.2f}",
                    f"{pct_decrease(t0, t):+.1f}",
                ]
            )
    print(
        format_table(
            ["Filter", "iterations", "%NNZ", "modeled ms", "Δtime %"],
            rows,
            title="FSAIE-Comm filter sweep (elasticity3d, Skylake model)",
        )
    )


if __name__ == "__main__":
    main()
