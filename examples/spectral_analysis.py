#!/usr/bin/env python3
"""What does the preconditioner do to the spectrum?  Measure it from CG.

Run:  python examples/spectral_analysis.py

CG's step coefficients encode a Lanczos tridiagonalisation of the
(preconditioned) operator, so a converged solve doubles as an eigensolver.
This example recovers the spectrum bounds and effective condition number of
the operator under no preconditioner, FSAI, FSAIE-Comm and a level-2 FSAI —
making the iteration counts of the other examples quantitatively
explainable.
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistMatrix,
    DistVector,
    FSAIOptions,
    PrecondOptions,
    RowPartition,
    build_fsai,
    build_fsaie_comm,
    paper_rhs,
    pcg,
)
from repro.analysis import convergence_rate, format_table
from repro.core import cg
from repro.matgen import poisson2d


def main() -> None:
    mat = poisson2d(24)
    part = RowPartition.from_matrix(mat, 4)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=7), part)
    print(f"problem: 2-D Poisson, {mat.nrows} unknowns\n")

    runs = {"none": cg(da, b, rtol=1e-12)}
    for label, build, opts in (
        ("FSAI", build_fsai, PrecondOptions()),
        ("FSAI level 2", build_fsai, PrecondOptions(fsai=FSAIOptions(level=2))),
        ("FSAIE-Comm", build_fsaie_comm, PrecondOptions()),
    ):
        pre = build(mat, part, opts)
        runs[label] = pcg(da, b, precond=pre.apply, rtol=1e-12)

    rows = []
    for label, result in runs.items():
        est = result.spectral_estimate()
        rows.append(
            [
                label,
                result.iterations,
                f"{est.lambda_min:.4f}",
                f"{est.lambda_max:.4f}",
                f"{est.condition_number:.1f}",
                f"{convergence_rate(result.residual_norms):.4f}",
            ]
        )
    print(
        format_table(
            ["preconditioner", "iterations", "λ_min", "λ_max", "cond est.", "rate/iter"],
            rows,
            title="Ritz estimates from the CG Lanczos coefficients",
        )
    )

    # cross-check the unpreconditioned estimate against the true spectrum
    w = np.linalg.eigvalsh(mat.to_dense())
    print(f"\ntrue A spectrum: [{w[0]:.4f}, {w[-1]:.4f}], cond {w[-1] / w[0]:.1f}")
    print("the 'none' row recovers it without ever forming the operator.")


if __name__ == "__main__":
    main()
