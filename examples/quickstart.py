#!/usr/bin/env python3
"""Quickstart: solve a 3-D Poisson system with FSAIE-Comm preconditioned CG.

Run:  python examples/quickstart.py

Walks through the full pipeline of the paper on a small problem:
partition the matrix across simulated MPI ranks, build the three
preconditioners (FSAI, FSAIE, FSAIE-Comm), solve with CG under the paper's
protocol, and verify that the communication-aware extension left the halo
exchanges untouched.
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistMatrix,
    DistVector,
    PAPER_RTOL,
    RowPartition,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
    check_comm_invariance,
    paper_rhs,
    pcg,
)
from repro.matgen import poisson3d


def main() -> None:
    # 1. a model problem: 7-point Laplacian on a 16^3 grid
    mat = poisson3d(16)
    print(f"matrix: {mat.nrows} rows, {mat.nnz} nonzeros")

    # 2. distribute rows over 8 simulated MPI ranks with the built-in
    #    multilevel partitioner (the repo's METIS stand-in)
    part = RowPartition.from_matrix(mat, nparts=8)
    da = DistMatrix.from_global(mat, part)
    print(f"partition: {part.nparts} ranks, "
          f"halo values per update: {da.schedule.total_halo_values()}")

    # 3. right-hand side per the paper's protocol: random, normalised to the
    #    matrix max-norm; initial guess zero; stop at 8 orders of reduction
    b = DistVector.from_global(paper_rhs(mat, seed=0), part)

    # 4. build the three preconditioners and solve
    results = {}
    for build in (build_fsai, build_fsaie, build_fsaie_comm):
        pre = build(mat, part)
        res = pcg(da, b, precond=pre, rtol=PAPER_RTOL)
        results[pre.name] = (pre, res)
        print(
            f"{pre.name:11s} iterations={res.iterations:4d} "
            f"converged={res.converged}  pattern nnz={pre.nnz} "
            f"(+{pre.nnz_increase_percent:.1f}% vs FSAI)"
        )

    # 5. the paper's guarantee: the extended preconditioners exchange exactly
    #    the same halo values as the baseline
    base = results["FSAI"][0]
    for name in ("FSAIE", "FSAIE-Comm"):
        assert check_comm_invariance(base, results[name][0])
    print("communication scheme: unchanged by both extensions ✓")

    # 6. verify the solution independently
    x = results["FSAIE-Comm"][1].x.to_global()
    rel = np.linalg.norm(mat.spmv(x) - b.to_global()) / np.linalg.norm(b.to_global())
    print(f"final relative residual: {rel:.2e}")


if __name__ == "__main__":
    main()
