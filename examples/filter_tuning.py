#!/usr/bin/env python3
"""Dynamic filtering deep-dive: fixing load imbalance from pattern extension.

Run:  python examples/filter_tuning.py

Reproduces the §5.3.3 mechanism on a deliberately imbalanced case: extend
the FSAI pattern of a dense-row matrix, watch the per-rank nonzero counts
diverge under static filtering, then let Alg. 4's per-rank bisection pull
the overloaded ranks back into the ±5% band.
"""

from __future__ import annotations

from repro import (
    DistMatrix,
    DistVector,
    FilterSpec,
    PrecondOptions,
    RowPartition,
    build_fsaie_comm,
    paper_rhs,
    pcg,
)
from repro.analysis import format_table
from repro.core import imbalance_index, relative_load
from repro.matgen import wide_stencil_3d


def main() -> None:
    mat = wide_stencil_3d(7, 2)
    # an intentionally uneven partition: contiguous strips of a 3-D ordering
    # put very different halo/local mixes on each rank
    part = RowPartition.contiguous(mat.nrows, 5)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=3), part)
    print(f"matrix: {mat.nrows} rows, {mat.nnz} nonzeros, 5 ranks (strip partition)\n")

    rows = []
    for dynamic in (False, True):
        opts = PrecondOptions(filter=FilterSpec(0.001, dynamic=dynamic))
        pre = build_fsaie_comm(mat, part, opts)
        per_rank = pre.nnz_per_rank()
        res = pcg(da, b, precond=pre.apply)
        rows.append(
            [
                "dynamic" if dynamic else "static",
                " ".join(f"{c:6d}" for c in per_rank),
                f"{imbalance_index(per_rank):.3f}",
                f"{relative_load(per_rank).max():.3f}",
                res.iterations,
                " ".join(f"{f:.3g}" for f in pre.filters),
            ]
        )

    print(
        format_table(
            ["filtering", "nnz per rank", "imb index", "max load", "iters", "per-rank filters"],
            rows,
            title="Static vs dynamic filtering (Filter 0.001, FSAIE-Comm)",
        )
    )
    print("\nThe dynamic strategy raises the filter only on overloaded ranks;")
    print("the imbalance index (mean/max, 1.0 = balanced) moves toward 1.")


if __name__ == "__main__":
    main()
