#!/usr/bin/env python3
"""Figure 1 illustration: where FSAIE-Comm may add halo entries.

Run:  python examples/halo_extension_demo.py

Reproduces the paper's Figure 1 as ASCII art: a small matrix distributed
over two ranks, showing the local regions, the halo regions, the initial
entries, and the cells where the communication-aware extension is allowed to
add new entries (already-received columns of already-sent rows).
"""

from __future__ import annotations

import numpy as np

from repro.core import ExtensionMode, extend_dist_pattern, fsai_pattern
from repro.dist import DistMatrix, RowPartition
from repro.matgen import poisson2d


def main() -> None:
    # a 20x20 banded SPD matrix split into two ranks, like the paper's figure
    mat = poisson2d(4, 5)  # 20 unknowns
    n = mat.nrows
    part = RowPartition.contiguous(n, 2)
    base = fsai_pattern(mat)
    dist = DistMatrix.from_global(base.to_csr(), part)

    # compute the communication-aware extension with wide cache lines so the
    # eligible region is clearly visible
    extensions = extend_dist_pattern(dist, line_bytes=256, mode=ExtensionMode.COMM)
    added = {
        (int(i), int(j)) for e in extensions for i, j in zip(e.rows, e.cols)
    }

    owner = part.owner
    legend = {
        "#": "initial pattern entry (lower triangle of A)",
        "+": "entry added by FSAIE-Comm (local)",
        "O": "entry added by FSAIE-Comm (halo, communication-free)",
        ".": "local region",
        " ": "upper triangle (unused by G)",
        "-": "halo region (off-rank coupling area)",
    }

    print("FSAIE-Comm halo extension on a 20x20 matrix, 2 ranks "
          "(rows 0-9 on rank 0, rows 10-19 on rank 1)\n")
    header = "    " + "".join(f"{j:>2d}" for j in range(n))
    print(header)
    for i in range(n):
        cells = []
        for j in range(n):
            if j > i:
                ch = " "
            elif base.contains(i, j):
                ch = "#"
            elif (i, j) in added:
                ch = "O" if owner[i] != owner[j] else "+"
            elif owner[i] == owner[j]:
                ch = "."
            else:
                ch = "-"
            cells.append(f" {ch}")
        print(f"{i:>3d} " + "".join(cells))

    print("\nlegend:")
    for ch, meaning in legend.items():
        print(f"  {ch!r}: {meaning}")

    n_local = sum(e.n_local_added for e in extensions)
    n_halo = sum(e.n_halo_added for e in extensions)
    print(f"\nadded entries: {n_local} local, {n_halo} halo "
          f"(halo additions only in columns already received and rows already sent)")

    # verify the figure's claim programmatically
    from repro.dist import HaloSchedule
    from repro.core.precond import _union_with_entries

    rows = np.array([i for i, _ in added], dtype=np.int64)
    cols = np.array([j for _, j in added], dtype=np.int64)
    ext_pattern = _union_with_entries(base, rows, cols)
    assert HaloSchedule.from_pattern(ext_pattern, part) == HaloSchedule.from_pattern(base, part)
    print("halo schedule unchanged ✓")


if __name__ == "__main__":
    main()
