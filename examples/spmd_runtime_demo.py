#!/usr/bin/env python3
"""Run the full preconditioned solver on the SPMD message-passing runtime.

Run:  python examples/spmd_runtime_demo.py

Everything else in this repo uses the deterministic bulk-synchronous engine;
this example executes the identical algorithm on `repro.mpisim` — real
threads, real blocking messages, real collectives — and shows that:

* the results agree bit-for-bit in iteration count,
* the communication tracker sees exactly the same byte volume per halo
  update for FSAI and FSAIE-Comm (the paper's core guarantee, measured on
  the wire rather than proven on schedules).
"""

from __future__ import annotations

import numpy as np

from repro import (
    DistMatrix,
    DistVector,
    PAPER_RTOL,
    RowPartition,
    build_fsai,
    build_fsaie_comm,
    paper_rhs,
    pcg,
)
from repro.dist import spmd_cg
from repro.matgen import poisson2d
from repro.mpisim import CommTracker


def main() -> None:
    mat = poisson2d(24)
    part = RowPartition.from_matrix(mat, nparts=6)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=2), part)
    print(f"problem: {mat.nrows} unknowns on {part.nparts} SPMD ranks")

    for build in (build_fsai, build_fsaie_comm):
        pre = build(mat, part)

        bsp = pcg(da, b, precond=pre.apply, rtol=PAPER_RTOL)

        tracker = CommTracker()
        x_spmd, iters = spmd_cg(
            da, b, rtol=PAPER_RTOL, precond_pair=(pre.g, pre.gt), tracker=tracker
        )
        assert iters == bsp.iterations
        assert np.allclose(x_spmd.to_global(), bsp.x.to_global(), atol=1e-9)

        # exact wire cost of one preconditioner application z = Gᵀ(G·r)
        apply_tracker = CommTracker()
        pre.apply(b, apply_tracker)
        print(
            f"{pre.name:11s} iterations={iters:4d} (BSP == SPMD ✓)  "
            f"solve p2p messages={tracker.total_messages:6d}  "
            f"bytes per precond apply={apply_tracker.total_bytes:,d}"
        )

    print("\nNote: bytes per preconditioner application are identical for FSAI")
    print("and FSAIE-Comm — the extended pattern moved zero additional bytes.")


if __name__ == "__main__":
    main()
