#!/usr/bin/env python3
"""Strong-scaling study with the machine model (the §5.5.1 flavor).

Run:  python examples/scaling_study.py

Fix one problem, sweep the rank count, and watch the regime change the
paper exploits at 32 768 cores: as ranks multiply, per-rank work shrinks
while halos and reductions grow, so the share of time FSAIE-Comm's extra
(communication-free) entries cost keeps falling relative to what its
iteration savings buy.
"""

from __future__ import annotations

from repro import (
    DistMatrix,
    DistVector,
    PAPER_RTOL,
    RowPartition,
    build_fsai,
    build_fsaie_comm,
    paper_rhs,
    pcg,
)
from repro.analysis import convergence_rate, format_table, pct_decrease
from repro.matgen import poisson3d
from repro.perfmodel import ZEN2, CostModel

RANKS = (2, 4, 8, 16, 32)
THREADS = 8


def main() -> None:
    mat = poisson3d(14)
    print(f"problem: 7-point Poisson, {mat.nrows} unknowns, {mat.nnz} nonzeros")
    print(f"machine model: {ZEN2.name}, {THREADS} threads/process\n")

    rows = []
    for ranks in RANKS:
        part = RowPartition.from_matrix(mat, ranks, seed=ranks)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, 9), part)
        model = CostModel(ZEN2, threads_per_process=THREADS)

        times = {}
        iters = {}
        rates = {}
        for build in (build_fsai, build_fsaie_comm):
            pre = build(mat, part)
            res = pcg(da, b, precond=pre.apply, rtol=PAPER_RTOL)
            cost = model.iteration_cost(da, pre)
            times[pre.name] = res.iterations * cost.total
            iters[pre.name] = res.iterations
            rates[pre.name] = convergence_rate(res.residual_norms)
        halo = da.schedule.total_halo_values()
        rows.append(
            [
                ranks,
                halo,
                iters["FSAI"],
                iters["FSAIE-Comm"],
                f"{times['FSAI'] * 1e3:.3f}",
                f"{times['FSAIE-Comm'] * 1e3:.3f}",
                f"{pct_decrease(times['FSAI'], times['FSAIE-Comm']):+.1f}",
            ]
        )

    print(
        format_table(
            ["ranks", "halo values", "it FSAI", "it Comm",
             "t FSAI (ms)", "t Comm (ms)", "Δtime %"],
            rows,
            title="Strong scaling — FSAI vs FSAIE-Comm (modeled Zen 2 times)",
        )
    )
    print("\nhalo values grow with the rank count while the communication")
    print("volume of FSAIE-Comm stays exactly equal to FSAI's at every scale.")


if __name__ == "__main__":
    main()
