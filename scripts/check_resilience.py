#!/usr/bin/env python3
"""CI gate for the fault-injection and resilience subsystem.

Run:  PYTHONPATH=src python scripts/check_resilience.py

Four checks, mirroring the contracts documented in docs/RESILIENCE.md:

1. **Acceptance scenario** — under a seeded plan with one transient rank
   stall plus 5% message delays (past the timeout), PCG must converge to
   the *same* final residual as the fault-free run (relative tolerance
   1e-10) while ``halo.retries`` shows the retry path actually ran.
2. **Zero overhead** — with no injector installed, a traced solve must
   record no ``halo.retries`` / ``halo.timeouts`` and import nothing from
   :mod:`repro.resilience` on the hot path.
3. **Degraded mode** — a permanent rank failure must be absorbed by
   :func:`repro.resilience.solve_with_failover`, with the unaffected-edge
   invariance audit passing and the degraded solve converging.
4. **Chaos report** — the quick chaos menu must survive end-to-end and
   its versioned JSON artifact must round-trip through
   :class:`repro.resilience.ChaosReport`.

Exit code 0 when all pass; 1 with one line per failure otherwise.  Wired
into the test suite as ``tests/test_resilience_gate.py`` (marker:
``chaos_smoke``).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import build_fsai, pcg  # noqa: E402
from repro.dist import DistMatrix, DistVector, RowPartition  # noqa: E402
from repro.instrument import tracing  # noqa: E402
from repro.matgen import paper_rhs, poisson2d  # noqa: E402
from repro.mpisim import get_injector  # noqa: E402
from repro.resilience import (  # noqa: E402
    ChaosReport,
    FaultPlan,
    MessageDelay,
    RankFailure,
    RankStall,
    fault_injection,
    quick_menu,
    run_chaos,
    solve_with_failover,
)

RANKS = 4
SEED = 7
RTOL = 1e-8
IDENTICAL_RTOL = 1e-10


def _system():
    mat = poisson2d(16)
    part = RowPartition.from_matrix(mat, RANKS, seed=SEED)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=SEED), part)
    pre = build_fsai(mat, part)
    return mat, da, b, pre


def check_acceptance(problems: list[str]) -> None:
    """Stall + 5% delays: identical residual, retries observed."""
    _, da, b, pre = _system()
    clean = pcg(da, b, precond=pre, rtol=RTOL)
    plan = FaultPlan(
        seed=SEED,
        delays=(MessageDelay(probability=0.05, seconds=0.08),),
        stalls=(RankStall(rank=1, seconds=0.02, at_update=2),),
    )
    with tracing() as (_, metrics):
        with fault_injection(plan) as injector:
            faulty = pcg(da, b, precond=pre, rtol=RTOL)
        retries = metrics.sum_values("halo.retries")
    if not faulty.converged:
        problems.append("acceptance: faulty solve did not converge")
    rel = abs(faulty.final_residual - clean.final_residual) / max(
        abs(clean.final_residual), np.finfo(np.float64).tiny
    )
    if rel > IDENTICAL_RTOL:
        problems.append(
            f"acceptance: residual diverged from clean run (rel diff {rel:.3e})"
        )
    if retries <= 0:
        problems.append("acceptance: halo.retries did not appear in the registry")
    if injector.counts["stalls"] != 1:
        problems.append(
            f"acceptance: expected 1 consumed stall, got {injector.counts['stalls']}"
        )
    print(
        f"acceptance   : rel diff {rel:.1e}, {int(retries)} retries, "
        f"{injector.counts['stalls']} stall(s) — "
        f"{'ok' if rel <= IDENTICAL_RTOL and retries > 0 else 'FAIL'}"
    )


def check_zero_overhead(problems: list[str]) -> None:
    """No injector installed: no retry/timeout metrics, hook returns None."""
    if get_injector() is not None:
        problems.append("zero-overhead: an injector is installed outside the gate")
    _, da, b, pre = _system()
    with tracing() as (_, metrics):
        result = pcg(da, b, precond=pre, rtol=RTOL)
        retries = metrics.sum_values("halo.retries")
        timeouts = metrics.sum_values("halo.timeouts")
    if retries or timeouts:
        problems.append(
            f"zero-overhead: fault-free run recorded retries={retries} "
            f"timeouts={timeouts}"
        )
    print(
        f"zero-overhead: fault-free solve converged={result.converged}, "
        f"retries={int(retries)}, timeouts={int(timeouts)} — "
        f"{'ok' if not (retries or timeouts) else 'FAIL'}"
    )


def check_failover(problems: list[str]) -> None:
    """Permanent rank failure: degrade, audit unaffected edges, re-solve."""
    _, da, b, _ = _system()
    plan = FaultPlan(seed=SEED, failures=(RankFailure(rank=1, at_update=3),))
    with fault_injection(plan):
        outcome = solve_with_failover(
            da, b, precond_builder=lambda a, part: build_fsai(a, part), rtol=RTOL
        )
    if not outcome.failed_over:
        problems.append("failover: rank failure was never injected")
        return
    if not outcome.result.converged:
        problems.append("failover: degraded solve did not converge")
    if not outcome.system.audit.invariant:
        problems.append("failover: unaffected-edge invariance audit failed")
    print(
        f"failover     : rank {outcome.system.failed_rank} absorbed by "
        f"{outcome.system.absorbers}, degraded solve converged="
        f"{outcome.result.converged}, audit invariant="
        f"{outcome.system.audit.invariant} — "
        f"{'ok' if outcome.result.converged and outcome.system.audit.invariant else 'FAIL'}"
    )


def check_chaos_report(problems: list[str]) -> None:
    """Quick menu survives; report artifact round-trips."""
    mat, _, _, _ = _system()
    report = run_chaos(
        mat,
        ranks=RANKS,
        seed=SEED,
        rtol=RTOL,
        menu=quick_menu(RANKS),
        precond_builder=lambda a, part: build_fsai(a, part),
        matrix_label="poisson2d:16",
    )
    if not report.survived:
        failed = [s.name for s in report.scenarios if not s.survived]
        problems.append(f"chaos: scenarios failed: {failed}")
    with tempfile.TemporaryDirectory() as tmp:
        path = report.save(Path(tmp) / "chaos.json")
        loaded = ChaosReport.load(path)
    if loaded.to_dict() != report.to_dict():
        problems.append("chaos: report did not round-trip through JSON")
    print(
        f"chaos        : {len(report.scenarios)} scenario(s), survived="
        f"{report.survived}, artifact round-trip ok — "
        f"{'ok' if report.survived else 'FAIL'}"
    )


def main() -> int:
    problems: list[str] = []
    check_acceptance(problems)
    check_zero_overhead(problems)
    check_failover(problems)
    check_chaos_report(problems)
    for line in problems:
        print(f"FAIL: {line}", file=sys.stderr)
    if problems:
        print(f"{len(problems)} resilience problem(s)", file=sys.stderr)
        return 1
    print("resilience gate clean: acceptance, zero-overhead, failover, chaos")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
