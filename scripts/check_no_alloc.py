#!/usr/bin/env python
"""CI gate: the warm-workspace hot loop must stay allocation-free.

Runs one 2-D Poisson PCG solve (tracing disabled — the zero-overhead path)
through a warmed :class:`~repro.kernels.workspace.SolverWorkspace`, records
the per-iteration allocation counters into a
:class:`repro.observe.RunReport`, and gates on the report's
``kernels.hot_allocs_per_iteration`` metric against the recorded baseline in
``benchmarks/baselines/no_alloc_baseline.json``.  Exits non-zero if the hot
loop allocates more than the baseline allows — i.e. someone reintroduced a
per-iteration array allocation on the solver path.

Usage::

    PYTHONPATH=src python scripts/check_no_alloc.py [--grid 32] [--ranks 4]
                                                    [--report out.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BASELINE = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines" / "no_alloc_baseline.json"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--grid", type=int, default=32, help="Poisson grid edge")
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--baseline", default=str(BASELINE))
    parser.add_argument(
        "--report", help="also write the measured RunReport JSON to this path"
    )
    args = parser.parse_args(argv)

    import numpy as np

    from repro.core.cg import pcg
    from repro.core.precond import build_fsai
    from repro.dist.matrix import DistMatrix
    from repro.dist.partition_map import RowPartition
    from repro.dist.vector import DistVector
    from repro.kernels import SolverWorkspace
    from repro.matgen import poisson2d

    baseline = json.loads(Path(args.baseline).read_text())
    allowed = float(baseline["hot_allocs_per_iteration"])

    mat = poisson2d(args.grid)
    partition = RowPartition.contiguous(mat.nrows, args.ranks)
    dmat = DistMatrix.from_global(mat, partition)
    pre = build_fsai(mat, partition)
    rng = np.random.default_rng(0)
    b = DistVector.from_global(rng.standard_normal(mat.nrows), partition)

    ws = SolverWorkspace(dmat)
    warm = pcg(dmat, b, precond=pre, workspace=ws)  # warm-up solve
    if not warm.converged:
        print("error: warm-up solve did not converge", file=sys.stderr)
        return 2
    before = ws.allocations
    result = pcg(dmat, b, precond=pre, workspace=ws)
    hot = ws.allocations - before

    # the gate reads the measured counts through the RunReport surface — the
    # same artifact 'repro report --compare' and the bench gate consume
    from repro.observe import RunReport

    report = RunReport(
        meta={"label": "no-alloc-gate", "grid": args.grid, "ranks": args.ranks}
    )
    report.add_metric("pcg.iterations", result.iterations)
    report.add_metric("kernels.hot_allocs", hot)
    report.add_metric(
        "kernels.hot_allocs_per_iteration", hot / max(result.iterations, 1)
    )
    if args.report:
        report.save(args.report)
    per_iter = report.metrics["kernels.hot_allocs_per_iteration"]

    print(
        f"warm solve: {result.iterations} iterations, {hot} hot-loop array "
        f"allocations ({per_iter:.3f}/iteration, baseline allows {allowed})"
    )
    if per_iter > allowed:
        print(
            "FAIL: per-iteration allocations regressed above the recorded "
            f"baseline ({per_iter:.3f} > {allowed})",
            file=sys.stderr,
        )
        return 1
    print("OK: hot loop is allocation-free")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
