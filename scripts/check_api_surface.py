#!/usr/bin/env python3
"""Lint the public API surface against the generated reference.

Run:  python scripts/check_api_surface.py

Checks, for every package listed in ``scripts/gen_api_docs.py``:

1. every name in the module's ``__all__`` resolves via ``getattr`` (no stale
   exports),
2. every exported name appears in ``docs/API.md`` (the reference was
   regenerated after the surface last changed),
3. the module has a docstring (the generated reference leads with it), and
4. for the packages in :data:`DOC_COVERAGE` — the observability, kernel,
   backend and resilience layers, whose contracts live in prose — every
   exported function/class *and every public method* carries a docstring.

Exit code 0 when clean; 1 with a line per violation otherwise.  Wired into
the test suite as ``tests/test_api_surface.py``.
"""

from __future__ import annotations

import importlib
import inspect
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from gen_api_docs import PACKAGES  # noqa: E402 — sibling script, same list

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"

#: Packages whose exported callables must all be docstring-covered.
DOC_COVERAGE = (
    "repro.observe",
    "repro.kernels",
    "repro.backend",
    "repro.resilience",
    "repro.cachesim",
    "repro.serve",
)


def check_doc_coverage(modname: str) -> list[str]:
    """Docstring coverage of one package's ``__all__`` surface."""
    problems: list[str] = []
    try:
        mod = importlib.import_module(modname)
    except Exception as exc:  # pragma: no cover — import errors are the finding
        return [f"{modname}: import failed: {exc!r}"]
    for name in getattr(mod, "__all__", []):
        obj = getattr(mod, name, None)
        if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if not inspect.getdoc(obj):
            problems.append(f"{modname}.{name}: missing docstring")
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                target = attr.fget if isinstance(attr, property) else attr
                if not callable(target):
                    continue
                if not inspect.getdoc(target):
                    problems.append(
                        f"{modname}.{name}.{attr_name}: missing docstring"
                    )
    return problems


def check_package(modname: str, api_text: str) -> list[str]:
    problems: list[str] = []
    try:
        mod = importlib.import_module(modname)
    except Exception as exc:  # pragma: no cover — import errors are the finding
        return [f"{modname}: import failed: {exc!r}"]
    if not inspect.getdoc(mod):
        problems.append(f"{modname}: missing module docstring")
    exported = getattr(mod, "__all__", None)
    if exported is None:
        return problems
    seen = set()
    for name in exported:
        if name in seen:
            problems.append(f"{modname}.__all__ lists {name!r} twice")
        seen.add(name)
        if not hasattr(mod, name):
            problems.append(f"{modname}.__all__ exports {name!r} but it is not defined")
            continue
        if f"`{name}`" not in api_text and name not in api_text:
            problems.append(
                f"{modname}.{name} is exported but missing from docs/API.md — "
                "re-run scripts/gen_api_docs.py"
            )
    return problems


def main() -> int:
    if not API_MD.exists():
        print(f"missing {API_MD} — run scripts/gen_api_docs.py", file=sys.stderr)
        return 1
    api_text = API_MD.read_text()
    problems: list[str] = []
    for pkg in PACKAGES:
        problems.extend(check_package(pkg, api_text))
    for pkg in DOC_COVERAGE:
        problems.extend(check_doc_coverage(pkg))
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"{len(problems)} API surface problem(s)", file=sys.stderr)
        return 1
    print(
        f"API surface clean: {len(PACKAGES)} packages checked against {API_MD.name}, "
        f"docstring coverage enforced for {', '.join(DOC_COVERAGE)}"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
