#!/usr/bin/env python3
"""Lint the public API surface against the generated reference.

Run:  python scripts/check_api_surface.py

Checks, for every package listed in ``scripts/gen_api_docs.py``:

1. every name in the module's ``__all__`` resolves via ``getattr`` (no stale
   exports), and
2. every exported name appears in ``docs/API.md`` (the reference was
   regenerated after the surface last changed).

Exit code 0 when clean; 1 with a line per violation otherwise.  Wired into
the test suite as ``tests/test_api_surface.py``.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from gen_api_docs import PACKAGES  # noqa: E402 — sibling script, same list

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"


def check_package(modname: str, api_text: str) -> list[str]:
    problems: list[str] = []
    try:
        mod = importlib.import_module(modname)
    except Exception as exc:  # pragma: no cover — import errors are the finding
        return [f"{modname}: import failed: {exc!r}"]
    exported = getattr(mod, "__all__", None)
    if exported is None:
        return problems
    seen = set()
    for name in exported:
        if name in seen:
            problems.append(f"{modname}.__all__ lists {name!r} twice")
        seen.add(name)
        if not hasattr(mod, name):
            problems.append(f"{modname}.__all__ exports {name!r} but it is not defined")
            continue
        if f"`{name}`" not in api_text and name not in api_text:
            problems.append(
                f"{modname}.{name} is exported but missing from docs/API.md — "
                "re-run scripts/gen_api_docs.py"
            )
    return problems


def main() -> int:
    if not API_MD.exists():
        print(f"missing {API_MD} — run scripts/gen_api_docs.py", file=sys.stderr)
        return 1
    api_text = API_MD.read_text()
    problems: list[str] = []
    for pkg in PACKAGES:
        problems.extend(check_package(pkg, api_text))
    for line in problems:
        print(line, file=sys.stderr)
    if problems:
        print(f"{len(problems)} API surface problem(s)", file=sys.stderr)
        return 1
    print(f"API surface clean: {len(PACKAGES)} packages checked against {API_MD.name}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
