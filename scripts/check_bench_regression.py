#!/usr/bin/env python
"""CI gate: kernel microbenchmark counters must not regress.

Diffs a ``BENCH_kernels.json`` suite result (a recorded file, or a fresh
quick run) against the recorded baseline in
``benchmarks/baselines/bench_baseline.json`` through
:meth:`repro.observe.RunReport.compare` with per-metric tolerances:

* allocation counters gate exactly (a warm workspace solve must stay at
  zero hot-loop allocations);
* iteration counts gate with a small absolute allowance, and only when the
  fresh run used the same suite configuration as the baseline (iteration
  counts depend on the benchmarked grid);
* timing-derived speedups are machine-dependent and are only checked with
  ``--check-timings`` (wide relative tolerance) — never in CI by default;
* the batched-vs-per-row FSAI setup speedup is the one timing gated on every
  kernels run, against the absolute :data:`SETUP_SPEEDUP_FLOOR` rather than
  the baseline — eliminating the per-row Python loop is an algorithmic win
  that holds on any machine.

Solve-level suites (``BENCH_solver.json``, see :mod:`benchmarks.solver_bench`)
are gated too — either pass ``--solver`` or point ``--bench`` at a solver
document and the script switches to the solver baseline and tolerances:
iteration counts get a small absolute allowance, nnz counts and the
communication-invariance flags gate exactly, and modeled times (analytic,
but float-accumulated) gate with a narrow relative band.

The weak-scaling suite (``BENCH_scaling.json``, see
:mod:`benchmarks.scaling_bench`) has its own baseline and tolerances via
``--scaling``: message and byte totals under per-edge coalescing plus the
two communication-invariance flags gate exactly, iteration counts get the
small absolute allowance, modeled times (per-iteration cost and max BSP
wait) gate with ``--check-timings``, and wall-clock seconds are never gated.
Without ``--bench`` the flag runs the quick (64-rank) ladder fresh.

The cache free-ride suite (``BENCH_cache.json``, see
:mod:`benchmarks.cache_bench`) is gated via ``--cache`` against
``benchmarks/baselines/cache_baseline.json``: the attributed replay is a
pure function of the matrix, partition seed and cache geometry, so every
count (nonzeros, misses, extension accesses, free rides) and claim flag
gates exactly, and the derived fractions (free-ride percentages,
misses-per-nnz, model ratios) gate within float round-off.  The
claim-level gate with the fresh-run fallback is
``scripts/check_cache_reuse.py``; this entry point catches silent drift of
the recorded numbers themselves.

The model-conformance suite (``BENCH_conformance.json``, see
:mod:`benchmarks.conformance_bench`) is gated via ``--conformance`` against
``benchmarks/baselines/conformance_baseline.json``: the three structural
flags (schedule invariance, invariance-with-telemetry, telemetry excluded
from the audit), solver message/byte totals, sampled-rank counts and
telemetry message counts gate exactly; telemetry payload sizes gate with a
wide relative band (they serialise measured floats, so their JSON length
wobbles); measured/predicted phase ratios are machine-dependent and gate
only with ``--check-timings`` (the dedicated drift gate is
``scripts/check_model_conformance.py``); straggler counts and wall seconds
are never gated.

The solve-farm serving suite (``BENCH_serve.json``, see
:mod:`benchmarks.serve_bench`) is gated via ``--serve`` against
``benchmarks/baselines/serve_baseline.json``: admission verdicts, cache
hit/miss counts, audit counts and the invariance/convergence flags are
deterministic (admission is lock-serialised and the warm phase is
pre-warmed to an exact hit pattern) and gate exactly; hit rates and shed
fractions gate within float round-off; total iteration counts get the
small absolute allowance when configs match; throughputs and latency
percentiles are machine-dependent (``--check-timings`` only); wall
seconds are never gated.  The warm-over-cold throughput speedup is the
one timing gated on every serve run, against the absolute
:data:`SERVE_SPEEDUP_FLOOR` rather than the baseline — serving from the
warm artifact cache skips the entire setup pipeline, an algorithmic win
that holds on any machine.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py            # quick run
    PYTHONPATH=src python scripts/check_bench_regression.py --bench BENCH_kernels.json
    PYTHONPATH=src python scripts/check_bench_regression.py --solver --bench BENCH_solver.json
    PYTHONPATH=src python scripts/check_bench_regression.py --scaling --bench BENCH_scaling.json
    PYTHONPATH=src python scripts/check_bench_regression.py --conformance --bench BENCH_conformance.json
    PYTHONPATH=src python scripts/check_bench_regression.py --cache --bench BENCH_cache.json
    PYTHONPATH=src python scripts/check_bench_regression.py --serve --bench BENCH_serve.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BASELINE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "baselines"
    / "bench_baseline.json"
)

#: Deterministic counters, gated on every run.
GATED_METRICS = {
    "bench.pcg_hot_allocs": {"rel": 0.0, "abs": 0.0},
    "bench.pcg.workspace_allocs_hot": {"rel": 0.0, "abs": 0.0},
}

#: Config-dependent counters, gated only when fresh config == baseline config.
CONFIG_METRICS = {
    "bench.pcg.iterations": {"rel": 0.0, "abs": 2.0},
}

#: Machine-dependent ratios, opt-in via --check-timings.
TIMING_METRICS = {
    "bench.spmv_speedup_largest": {"rel": 0.9},
    "bench.spmv_transpose_speedup_largest": {"rel": 0.9},
    "bench.pcg_speedup": {"rel": 0.9},
    "bench.setup_batched_speedup": {"rel": 0.9},
}

#: Absolute floor for the batched-vs-per-row FSAI setup speedup, gated on
#: every kernels run (not just --check-timings): the batched path removes a
#: Python-level per-row loop, so even small smoke grids clear this with a
#: wide margin on any machine.
SETUP_SPEEDUP_FLOOR = 1.3

#: Suite configuration of the recorded baseline (quick smoke sizes).
BASELINE_SIZES = (12, 16)

SOLVER_BASELINE = BASELINE.parent / "solver_baseline.json"

SCALING_BASELINE = BASELINE.parent / "scaling_baseline.json"

CONFORMANCE_BASELINE = BASELINE.parent / "conformance_baseline.json"

CACHE_BASELINE = BASELINE.parent / "cache_baseline.json"

SERVE_BASELINE = BASELINE.parent / "serve_baseline.json"

#: Absolute floor for the warm-over-cold serving throughput speedup, gated
#: on every serve run (not just --check-timings): a warm-cache solve skips
#: fingerprint-keyed setup entirely (partition, FSAI factorisation, halo
#: schedule, plan build), so any machine clears this with a wide margin.
SERVE_SPEEDUP_FLOOR = 3.0


def serve_tolerances(baseline, *, config_matches: bool, check_timings: bool) -> dict:
    """Per-metric tolerances for the solve-farm serving suite
    (``BENCH_serve.json``, see :mod:`benchmarks.serve_bench`).

    Admission counts, cache hit/miss/build counters, audit counts and the
    invariance/convergence flags are deterministic (the admission phase is
    a synchronous replay of a fixed request pattern; the warm phase is
    pre-warmed so every timed request hits the structure tier) and gate
    exactly.  Hit rates and shed fractions are exact ratios of those
    counts (float round-off band only).  Total PCG iterations depend on
    the benchmarked grid (config-gated, small absolute allowance).
    Throughputs and latency percentiles are machine-dependent and gate
    only with ``--check-timings``; the warm-over-cold speedup is instead
    held to the absolute :data:`SERVE_SPEEDUP_FLOOR` on every run, and
    wall seconds are never gated.
    """
    tolerances = {}
    for name in baseline.metrics:
        if name.endswith(
            (".admitted", ".shed", ".shed_queue_full", ".shed_tenant_budget",
             ".shed_unknown", ".solves", ".structure_builds", ".cache_hits",
             ".cache_misses", ".structure_hits", ".structure_misses",
             ".system_hits", ".system_misses", ".audits", ".audit_violations",
             ".schedule_invariant", ".converged")
        ):
            tolerances[name] = {"rel": 0.0, "abs": 0.0}
        elif name.endswith((".hit_rate", ".shed_fraction")):
            tolerances[name] = {"rel": 1e-9}
        elif name.endswith(".iterations_total") and config_matches:
            tolerances[name] = {"rel": 0.0, "abs": 2.0}
        elif name.endswith(
            (".throughput_rps", ".p50_ms", ".p95_ms", ".p99_ms")
        ) and check_timings:
            tolerances[name] = {"rel": 0.9}
    return tolerances


def cache_tolerances(baseline, *, config_matches: bool, check_timings: bool) -> dict:
    """Per-metric tolerances for the cache free-ride suite
    (``BENCH_cache.json``, see :mod:`benchmarks.cache_bench`).

    Every metric is a deterministic function of the matrix, partition seed
    and cache geometry — no timings anywhere — so integer counts and claim
    flags gate exactly and the derived float fractions get a band that only
    absorbs round-off, not behaviour.  ``config_matches`` and
    ``check_timings`` are accepted for signature uniformity; a quick run is
    an exact key-subset of the full baseline, so the shared metrics gate
    identically either way.
    """
    del config_matches, check_timings
    tolerances = {}
    for name in baseline.metrics:
        if name.endswith(
            (".nnz", ".misses", ".ext_accesses", ".free_rides",
             ".free_ride_majority", ".misses_per_nnz_ok", ".free_ride_rises")
        ):
            tolerances[name] = {"rel": 0.0, "abs": 0.0}
        elif name.endswith(
            (".free_ride_pct", ".free_ride_local_pct", ".free_ride_halo_pct",
             ".misses_per_nnz", ".model_ratio")
        ):
            tolerances[name] = {"rel": 1e-9}
    return tolerances


def conformance_tolerances(
    baseline, *, config_matches: bool, check_timings: bool
) -> dict:
    """Per-metric tolerances for the model-conformance suite
    (``BENCH_conformance.json``, see :mod:`benchmarks.conformance_bench`).

    Structural flags, solver traffic totals, sampled-rank counts and
    telemetry message counts are deterministic and gate exactly; telemetry
    byte/payload sizes serialise measured floats (their JSON length wobbles
    run to run) and get a wide relative band; iteration counts get the
    usual small absolute allowance; the measured/predicted phase ratios are
    machine-dependent and gate only with ``--check-timings`` — the
    log-scale drift gate lives in ``scripts/check_model_conformance.py``.
    Straggler counts and wall seconds are never gated.
    """
    tolerances = {}
    for name in baseline.metrics:
        if name.endswith(
            (".invariant", ".halo_invariant", ".telemetry_excluded",
             ".sampled_ranks", ".telemetry_messages")
        ):
            tolerances[name] = {"rel": 0.0, "abs": 0.0}
        elif name.endswith((".payload_bytes", ".telemetry_bytes")):
            tolerances[name] = {"rel": 0.5}
        elif name.endswith((".messages", ".bytes")):
            tolerances[name] = {"rel": 0.0, "abs": 0.0}
        elif name.endswith(".iterations") and config_matches:
            tolerances[name] = {"rel": 0.0, "abs": 2.0}
        elif ".ratio." in name and check_timings:
            tolerances[name] = {"rel": 2.0}
    return tolerances


def scaling_tolerances(baseline, *, config_matches: bool, check_timings: bool) -> dict:
    """Per-metric tolerances for the weak-scaling suite
    (``BENCH_scaling.json``, see :mod:`benchmarks.scaling_bench`).

    Message and byte totals are exact under per-edge coalescing (the
    transport records one message per (src, dst) pair per epoch with the
    summed payload bytes), and the two communication-invariance flags gate
    exactly; iteration counts get the usual small absolute allowance;
    modeled milliseconds and the modeled max BSP wait are analytic but
    float-accumulated (narrow relative band, opt-in).  Wall-clock seconds
    are recorded for context and never gated.
    """
    tolerances = {}
    for name in baseline.metrics:
        if name.endswith((".messages", ".bytes", ".invariant", ".halo_invariant")):
            tolerances[name] = {"rel": 0.0, "abs": 0.0}
        elif name.endswith(".iterations") and config_matches:
            tolerances[name] = {"rel": 0.0, "abs": 2.0}
        elif name.endswith((".modeled_ms", ".max_bsp_wait_ms")) and check_timings:
            tolerances[name] = {"rel": 0.1}
    return tolerances


def solver_tolerances(baseline, *, config_matches: bool, check_timings: bool) -> dict:
    """Per-metric tolerances for a solve-level suite, keyed off the baseline.

    nnz counts and invariance flags are pure functions of the generator seed
    and gate exactly; iteration counts additionally depend on the suite
    configuration; modeled milliseconds come from the analytic cost model
    (deterministic, but float-accumulated) and get a narrow relative band.
    """
    tolerances = {}
    for name in baseline.metrics:
        if name.endswith(".nnz") or name.endswith(".invariant"):
            tolerances[name] = {"rel": 0.0, "abs": 0.0}
        elif name.endswith(".iterations") and config_matches:
            tolerances[name] = {"rel": 0.0, "abs": 2.0}
        elif name.endswith(".modeled_ms") and check_timings:
            tolerances[name] = {"rel": 0.1}
    return tolerances


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        help="existing BENCH_kernels.json to check (default: run a quick suite)",
    )
    parser.add_argument("--baseline", help="baseline report (defaults per suite kind)")
    parser.add_argument(
        "--solver",
        action="store_true",
        help="gate a solve-level suite (BENCH_solver.json) instead of kernels",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="gate the weak-scaling suite (BENCH_scaling.json) instead of kernels",
    )
    parser.add_argument(
        "--conformance",
        action="store_true",
        help="gate the model-conformance suite (BENCH_conformance.json) "
        "instead of kernels",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="gate the cache free-ride suite (BENCH_cache.json) "
        "instead of kernels",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="gate the solve-farm serving suite (BENCH_serve.json) "
        "instead of kernels",
    )
    parser.add_argument(
        "--check-timings",
        action="store_true",
        help="also gate speedup ratios / modeled times (not for CI by default)",
    )
    args = parser.parse_args(argv)

    from repro.observe import ReportError, RunReport

    benchdir = str(Path(__file__).resolve().parent.parent / "benchmarks")
    if args.bench:
        try:
            fresh = RunReport.load(args.bench)
        except ReportError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        source = fresh.meta.get("source")
        if args.serve or source == "serve-bench":
            kind = "serve"
        elif args.cache or source == "cache-bench":
            kind = "cache"
        elif args.conformance or source == "conformance-bench":
            kind = "conformance"
        elif args.scaling or source == "scaling-bench":
            kind = "scaling"
        elif args.solver or source == "solver-bench":
            kind = "solver"
        else:
            kind = "kernels"
    elif args.serve:
        kind = "serve"
        sys.path.insert(0, benchdir)
        from serve_bench import run_serve_suite

        fresh = RunReport.from_serve_bench(
            run_serve_suite(quick=True), label="fresh"
        )
    elif args.cache:
        kind = "cache"
        sys.path.insert(0, benchdir)
        from cache_bench import run_cache_suite

        fresh = RunReport.from_cache_bench(
            run_cache_suite(quick=True), label="fresh"
        )
    elif args.conformance:
        kind = "conformance"
        sys.path.insert(0, benchdir)
        from conformance_bench import run_conformance_suite

        fresh = RunReport.from_conformance_bench(
            run_conformance_suite(quick=True), label="fresh"
        )
    elif args.scaling:
        kind = "scaling"
        sys.path.insert(0, benchdir)
        from scaling_bench import run_scaling_suite

        fresh = RunReport.from_scaling_bench(
            run_scaling_suite(quick=True), label="fresh"
        )
    elif args.solver:
        kind = "solver"
        sys.path.insert(0, benchdir)
        from solver_bench import run_solver_suite

        fresh = RunReport.from_solver_bench(
            run_solver_suite(quick=True), label="fresh"
        )
    else:
        kind = "kernels"
        from repro.kernels.bench import run_suite

        result = run_suite(sizes=BASELINE_SIZES, reps=1, quick=True)
        fresh = RunReport.from_bench(result, label="fresh")

    default_baseline = {
        "kernels": BASELINE,
        "solver": SOLVER_BASELINE,
        "scaling": SCALING_BASELINE,
        "conformance": CONFORMANCE_BASELINE,
        "cache": CACHE_BASELINE,
        "serve": SERVE_BASELINE,
    }[kind]
    try:
        baseline = RunReport.load(args.baseline or default_baseline)
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    config_matches = fresh.meta.get("config") == baseline.meta.get("config")
    if kind in ("solver", "scaling", "conformance", "cache", "serve"):
        # quick runs cover a subset (matrices / scales / rungs); compare
        # only on shared metrics
        config_matches = config_matches or set(fresh.metrics) <= set(
            baseline.metrics
        )
        tolerance_fn = {
            "solver": solver_tolerances,
            "scaling": scaling_tolerances,
            "conformance": conformance_tolerances,
            "cache": cache_tolerances,
            "serve": serve_tolerances,
        }[kind]
        tolerances = tolerance_fn(
            baseline,
            config_matches=config_matches,
            check_timings=args.check_timings,
        )
        tolerances = {k: v for k, v in tolerances.items() if k in fresh.metrics}
    else:
        tolerances = dict(GATED_METRICS)
        if config_matches:
            tolerances.update(CONFIG_METRICS)
        if args.check_timings:
            tolerances.update(TIMING_METRICS)
    if not config_matches:
        print(
            "note: suite configs differ, skipping iteration-count gate "
            f"(baseline {baseline.meta.get('config')}, fresh {fresh.meta.get('config')})"
        )

    gated = sorted(name for name in tolerances if name in baseline.metrics)
    comparison = baseline.compare(fresh, tolerances, metrics=gated)
    print(comparison.render())
    failed = not comparison.passed
    if failed:
        print(
            "FAIL: benchmark counters regressed beyond the recorded baseline",
            file=sys.stderr,
        )
    if kind == "serve":
        speedups = {
            name: value
            for name, value in sorted(fresh.metrics.items())
            if name.endswith(".warm_cold_speedup")
        }
        if not speedups:
            print(
                "FAIL: fresh serve run has no *.warm_cold_speedup metrics",
                file=sys.stderr,
            )
            failed = True
        for name, speedup in speedups.items():
            if speedup < SERVE_SPEEDUP_FLOOR:
                print(
                    f"FAIL: {name} {speedup:.2f}x is below the "
                    f"{SERVE_SPEEDUP_FLOOR}x warm-cache floor",
                    file=sys.stderr,
                )
                failed = True
            else:
                print(
                    f"serve floor: {name} {speedup:.2f}x >= "
                    f"{SERVE_SPEEDUP_FLOOR}x"
                )
    if kind == "kernels":
        speedup = fresh.metrics.get("bench.setup_batched_speedup")
        if speedup is None:
            print(
                "FAIL: fresh run is missing bench.setup_batched_speedup",
                file=sys.stderr,
            )
            failed = True
        elif speedup < SETUP_SPEEDUP_FLOOR:
            print(
                f"FAIL: batched FSAI setup speedup {speedup:.2f}x is below "
                f"the {SETUP_SPEEDUP_FLOOR}x floor",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"setup floor: batched FSAI setup {speedup:.2f}x >= "
                f"{SETUP_SPEEDUP_FLOOR}x"
            )
    if failed:
        return 1
    print("OK: benchmark counters within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
