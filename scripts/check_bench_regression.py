#!/usr/bin/env python
"""CI gate: kernel microbenchmark counters must not regress.

Diffs a ``BENCH_kernels.json`` suite result (a recorded file, or a fresh
quick run) against the recorded baseline in
``benchmarks/baselines/bench_baseline.json`` through
:meth:`repro.observe.RunReport.compare` with per-metric tolerances:

* allocation counters gate exactly (a warm workspace solve must stay at
  zero hot-loop allocations);
* iteration counts gate with a small absolute allowance, and only when the
  fresh run used the same suite configuration as the baseline (iteration
  counts depend on the benchmarked grid);
* timing-derived speedups are machine-dependent and are only checked with
  ``--check-timings`` (wide relative tolerance) — never in CI by default.

Usage::

    PYTHONPATH=src python scripts/check_bench_regression.py            # quick run
    PYTHONPATH=src python scripts/check_bench_regression.py --bench BENCH_kernels.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BASELINE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "baselines"
    / "bench_baseline.json"
)

#: Deterministic counters, gated on every run.
GATED_METRICS = {
    "bench.pcg_hot_allocs": {"rel": 0.0, "abs": 0.0},
    "bench.pcg.workspace_allocs_hot": {"rel": 0.0, "abs": 0.0},
}

#: Config-dependent counters, gated only when fresh config == baseline config.
CONFIG_METRICS = {
    "bench.pcg.iterations": {"rel": 0.0, "abs": 2.0},
}

#: Machine-dependent ratios, opt-in via --check-timings.
TIMING_METRICS = {
    "bench.spmv_speedup_largest": {"rel": 0.9},
    "bench.spmv_transpose_speedup_largest": {"rel": 0.9},
    "bench.pcg_speedup": {"rel": 0.9},
    "bench.setup_speedup": {"rel": 0.9},
}

#: Suite configuration of the recorded baseline (quick smoke sizes).
BASELINE_SIZES = (12, 16)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        help="existing BENCH_kernels.json to check (default: run a quick suite)",
    )
    parser.add_argument("--baseline", default=str(BASELINE))
    parser.add_argument(
        "--check-timings",
        action="store_true",
        help="also gate speedup ratios (machine-dependent; not for CI)",
    )
    args = parser.parse_args(argv)

    from repro.observe import ReportError, RunReport

    try:
        baseline = RunReport.load(args.baseline)
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.bench:
        try:
            fresh = RunReport.load(args.bench)
        except ReportError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        from repro.kernels.bench import run_suite

        result = run_suite(sizes=BASELINE_SIZES, reps=1, quick=True)
        fresh = RunReport.from_bench(result, label="fresh")

    tolerances = dict(GATED_METRICS)
    if fresh.meta.get("config") == baseline.meta.get("config"):
        tolerances.update(CONFIG_METRICS)
    else:
        print(
            "note: suite configs differ, skipping iteration-count gate "
            f"(baseline {baseline.meta.get('config')}, fresh {fresh.meta.get('config')})"
        )
    if args.check_timings:
        tolerances.update(TIMING_METRICS)

    gated = sorted(name for name in tolerances if name in baseline.metrics)
    comparison = baseline.compare(fresh, tolerances, metrics=gated)
    print(comparison.render())
    if not comparison.passed:
        print(
            "FAIL: benchmark counters regressed beyond the recorded baseline",
            file=sys.stderr,
        )
        return 1
    print("OK: benchmark counters within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
