#!/usr/bin/env python
"""CI gate: the paper's §4 communication claim, stated in critical paths.

On the 2-D stencil acceptance case this script asserts four facts that
together pin down FSAIE-Comm's contract:

1. **Halo critical path identity** — the static
   :func:`repro.observe.halo_critical_path` of FSAIE-Comm's ``G`` *and*
   ``Gᵀ`` schedules is edge-for-edge, byte-for-byte identical to FSAI's.
   The extension may grow the pattern but must not add a single wire byte.
2. **The extension still helps** — FSAIE-Comm converges in strictly fewer
   PCG iterations than FSAI on this case, and the attribution explainer
   reports the reduction with no suspects against FSAIE-Comm.
3. **Dynamic filtering earns its keep** — building the comm pattern with
   filtering disabled yields a strictly higher BSP max wait (per-rank nnz
   imbalance, :func:`repro.observe.bsp_wait_times`) than the dynamically
   filtered build.
4. **Timeline reconstruction is sound** — an SPMD solve's merged timeline
   satisfies ``max per-rank busy ≤ critical path ≤ makespan``.

Usage::

    PYTHONPATH=src python scripts/check_critical_path.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.core import (  # noqa: E402
    FilterSpec,
    build_fsai,
    build_fsaie_comm,
    pcg,
)
from repro.dist import DistMatrix, DistVector, RowPartition  # noqa: E402
from repro.dist.spmd import spmd_cg  # noqa: E402
from repro.instrument import tracing  # noqa: E402
from repro.matgen import PAPER_RTOL, paper_rhs, poisson2d  # noqa: E402
from repro.observe import (  # noqa: E402
    MethodFacts,
    Timeline,
    attribute,
    bsp_wait_times,
    halo_critical_path,
)

GRID = 16
RANKS = 4
SEED = 7
RHS_SEED = 3


def fail(msg: str) -> int:
    print(f"FAIL: {msg}", file=sys.stderr)
    return 1


def main() -> int:
    mat = poisson2d(GRID)
    part = RowPartition.from_matrix(mat, RANKS, seed=SEED)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=RHS_SEED), part)

    fsai = build_fsai(mat, part)
    comm = build_fsaie_comm(mat, part, filter=FilterSpec(0.01, dynamic=True))

    # 1. static halo critical paths must be identical, G and Gᵀ alike
    for attr in ("g", "gt"):
        base = halo_critical_path(getattr(fsai, attr).schedule)
        ext = halo_critical_path(getattr(comm, attr).schedule)
        if base != ext:
            return fail(
                f"halo critical path of {attr.upper()} differs:\n"
                f"  FSAI       {base.render()}\n  FSAIE-Comm {ext.render()}"
            )
        print(f"ok: {attr.upper()} {base.render()}")

    # 2. fewer iterations, clean attribution verdict
    res_fsai = pcg(da, b, precond=fsai, rtol=PAPER_RTOL, max_iterations=5000)
    res_comm = pcg(da, b, precond=comm, rtol=PAPER_RTOL, max_iterations=5000)
    if res_comm.iterations >= res_fsai.iterations:
        return fail(
            f"no iteration reduction: FSAI {res_fsai.iterations}, "
            f"FSAIE-Comm {res_comm.iterations}"
        )
    verdict = attribute(
        [
            MethodFacts.from_objects(fsai, res_fsai),
            MethodFacts.from_objects(comm, res_comm, invariant=True),
        ],
        meta={"case": f"poisson2d:{GRID}", "ranks": RANKS},
    )
    reduction = verdict.iteration_reduction_percent("FSAIE-Comm")
    comm_suspects = [s.name for s in verdict.suspects if s.method == "FSAIE-Comm"]
    if reduction is None or reduction <= 0:
        return fail(f"explainer reports no reduction ({reduction})")
    if comm_suspects:
        return fail(f"explainer raised suspects against FSAIE-Comm: {comm_suspects}")
    print(
        f"ok: FSAIE-Comm {res_comm.iterations} vs FSAI {res_fsai.iterations} "
        f"iterations ({reduction:+.1f}%), suspects clean"
    )

    # 3. unfiltered pattern must show strictly worse BSP imbalance
    unfiltered = build_fsaie_comm(mat, part, filter=FilterSpec(0.0, dynamic=False))
    waits = {
        name: bsp_wait_times(np.asarray(pre.nnz_per_rank(), dtype=float))
        for name, pre in (("dynamic", comm), ("unfiltered", unfiltered))
    }
    if not max(waits["unfiltered"]) > max(waits["dynamic"]):
        return fail(
            f"dynamic filtering did not reduce max BSP wait "
            f"(unfiltered {max(waits['unfiltered']):.1f}, "
            f"dynamic {max(waits['dynamic']):.1f} nnz)"
        )
    print(
        f"ok: max BSP wait (nnz) unfiltered {max(waits['unfiltered']):.0f} "
        f"> dynamic {max(waits['dynamic']):.0f}"
    )

    # 4. reconstructed SPMD timeline obeys its bracketing invariant
    with tracing() as (tracer, _):
        _, iterations = spmd_cg(
            da, b, precond_pair=(comm.g, comm.gt),
            rtol=PAPER_RTOL, max_iterations=500,
        )
    timeline = Timeline.from_tracer(tracer)
    cp = timeline.critical_path()
    max_busy = max(timeline.busy_seconds().values())
    if not (max_busy <= cp.length + 1e-12 and cp.length <= timeline.makespan + 1e-12):
        return fail(
            f"critical path {cp.length:.6f}s outside "
            f"[max busy {max_busy:.6f}s, makespan {timeline.makespan:.6f}s]"
        )
    print(
        f"ok: timeline ({iterations} iterations) max busy {max_busy * 1e3:.2f} ms "
        f"≤ critical path {cp.length * 1e3:.2f} ms "
        f"≤ makespan {timeline.makespan * 1e3:.2f} ms"
    )

    print("OK: communication invariance holds on the critical path")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
