#!/usr/bin/env python
"""CI gate: the α–β cost model must stay conformant with the simulator.

Consumes a ``BENCH_conformance.json`` suite (a recorded file, or a fresh
run of :mod:`benchmarks.conformance_bench`) and gates two different kinds of
fact against ``benchmarks/baselines/conformance_baseline.json``:

**Structural facts — exact, machine-independent.**  At every rung of the
strong-scaled ladder:

* ``invariant`` / ``halo_invariant`` — the paper's §4 guarantee that
  FSAIE-Comm exchanges exactly the FSAI halos, the latter re-proved on the
  wire *with streaming telemetry enabled*;
* ``telemetry_excluded`` — telemetry traffic actually flowed (nonzero
  telemetry bytes) while the audited point-to-point snapshots stayed
  identical, proving the in-band channel is invisible to the auditors;
* payload sublinearity — the serialized telemetry aggregate must grow
  sublinearly in the rank count (it is O(sampled ranks + log-bucket
  histograms) by construction) and stay below a quarter of the estimated
  full-trace volume for the same solve.  The growth gate needs at least
  two rungs and is skipped for ``--quick`` runs.

**Ratio drift — banded, machine-dependent.**  The measured/predicted ratio
of each phase (compute, halo, reduction) compares simulated wall seconds
against modeled seconds on a reference machine, so its absolute value is
meaningless — but its order of magnitude is stable on any one setup.  Each
fresh ratio must stay within ``--max-drift`` decades (default 1.5) of the
recorded baseline ratio at the same rung; a ratio that collapses to zero or
blows up to infinity while its baseline partner did not fails outright.

Usage::

    PYTHONPATH=src python scripts/check_model_conformance.py --quick
    PYTHONPATH=src python scripts/check_model_conformance.py --bench BENCH_conformance.json
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BASELINE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "baselines"
    / "conformance_baseline.json"
)

#: Structural flags that must be truthy at every rung.
REQUIRED_FLAGS = ("invariant", "halo_invariant", "telemetry_excluded")

#: Allowed order-of-magnitude drift (decades) per phase ratio vs baseline.
MAX_DRIFT_DECADES = 1.5

#: Telemetry payload must stay below this fraction of the full-trace volume.
TRACE_FRACTION = 0.25

#: Payload growth must stay below this fraction of the rank-count growth
#: across the ladder (strict sublinearity with margin).
GROWTH_FRACTION = 0.5


def check_structure(entries: list[dict], *, full_ladder: bool) -> list[str]:
    """Exact structural gates; returns failure messages."""
    failures: list[str] = []
    for entry in entries:
        ranks = entry["ranks"]
        extras = entry.get("extras", {})
        for flag in REQUIRED_FLAGS:
            if not extras.get(flag):
                failures.append(f"r{ranks}: structural flag {flag!r} is false")
        payload = entry.get("telemetry_payload_bytes", 0)
        trace = extras.get("full_trace_bytes", 0)
        if trace and payload >= TRACE_FRACTION * trace:
            failures.append(
                f"r{ranks}: telemetry payload {payload} B is not sublinear vs "
                f"the full-trace estimate {trace} B "
                f"(allowed < {TRACE_FRACTION:.0%})"
            )
    if full_ladder and len(entries) >= 2:
        lo = min(entries, key=lambda e: e["ranks"])
        hi = max(entries, key=lambda e: e["ranks"])
        rank_growth = hi["ranks"] / max(lo["ranks"], 1)
        payload_growth = hi["telemetry_payload_bytes"] / max(
            lo["telemetry_payload_bytes"], 1
        )
        if payload_growth >= GROWTH_FRACTION * rank_growth:
            failures.append(
                f"payload grew {payload_growth:.2f}x from r{lo['ranks']} to "
                f"r{hi['ranks']} while ranks grew {rank_growth:.0f}x — "
                f"telemetry is not sublinear in P "
                f"(allowed < {GROWTH_FRACTION:.0%} of rank growth)"
            )
    return failures


def check_drift(
    fresh_metrics: dict, baseline_metrics: dict, *, max_drift: float
) -> tuple[list[str], int]:
    """Log-scale ratio drift vs the recorded baseline; returns
    (failures, number of ratios compared)."""
    failures: list[str] = []
    compared = 0
    for name in sorted(fresh_metrics):
        if ".ratio." not in name or name not in baseline_metrics:
            continue
        fresh = float(fresh_metrics[name])
        base = float(baseline_metrics[name])
        compared += 1
        fresh_degenerate = fresh <= 0.0 or math.isinf(fresh)
        base_degenerate = base <= 0.0 or math.isinf(base)
        if fresh_degenerate or base_degenerate:
            if fresh_degenerate != base_degenerate:
                failures.append(
                    f"{name}: fresh ratio {fresh:g} vs baseline {base:g} "
                    f"(one side degenerate)"
                )
            continue
        drift = abs(math.log10(fresh) - math.log10(base))
        if drift > max_drift:
            failures.append(
                f"{name}: fresh ratio {fresh:.3g} drifted "
                f"{drift:.2f} decades from baseline {base:.3g} "
                f"(allowed {max_drift})"
            )
    return failures, compared


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        help="existing BENCH_conformance.json to check "
        "(default: run the suite fresh)",
    )
    parser.add_argument("--baseline", default=str(BASELINE),
                        help="recorded conformance baseline report")
    parser.add_argument(
        "--quick", action="store_true",
        help="fresh runs cover the 64-rank rung only "
        "(skips the payload-growth gate)",
    )
    parser.add_argument("--max-drift", type=float, default=MAX_DRIFT_DECADES,
                        help="allowed per-ratio drift in decades")
    args = parser.parse_args(argv)

    from repro.observe import ReportError, RunReport

    if args.bench:
        try:
            fresh = RunReport.load(args.bench)
        except ReportError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        from conformance_bench import run_conformance_suite

        fresh = RunReport.from_conformance_bench(
            run_conformance_suite(quick=args.quick), label="fresh"
        )
    if fresh.meta.get("source") != "conformance-bench":
        print(
            f"error: {args.bench or 'fresh run'} is not a conformance suite "
            f"(source={fresh.meta.get('source')!r})",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = RunReport.load(args.baseline)
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    entries = fresh.sections.get("conformance", {}).get("entries", [])
    if not entries:
        print("error: conformance suite has no ladder entries", file=sys.stderr)
        return 2
    full_ladder = not args.quick and len(entries) >= 2
    failures = check_structure(entries, full_ladder=full_ladder)
    drift_failures, compared = check_drift(
        fresh.metrics, baseline.metrics, max_drift=args.max_drift
    )
    failures += drift_failures

    rungs = ", ".join(f"r{e['ranks']}" for e in entries)
    print(f"conformance gate: {len(entries)} rung(s) [{rungs}], "
          f"{compared} ratio(s) checked against "
          f"{Path(args.baseline).name} (band {args.max_drift} decades)")
    if compared == 0:
        failures.append(
            "no phase ratios shared with the baseline — wrong baseline file?"
        )
    verdicts = fresh.sections.get("conformance", {}).get("verdicts", [])
    for verdict in verdicts:
        print(f"  note: verdict {verdict['name']} at r{verdict['ranks']}: "
              f"{verdict['detail']}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: model conformance within the recorded band "
          f"({len(verdicts)} divergence verdict(s), structural facts hold)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
