#!/usr/bin/env python
"""CI gate: extension entries must keep riding cache lines for free.

Consumes a ``BENCH_cache.json`` suite (a recorded file, or a fresh run of
:mod:`benchmarks.cache_bench`) and gates the paper's Figures 3a/5a claims
against ``benchmarks/baselines/cache_baseline.json``:

**Ledger claims — the paper's cache story, re-proved per rung.**  Every
claim record of every :class:`repro.observe.CacheConformance` document in
the suite must pass: the majority of FSAIE/FSAIE-Comm extension
``x``-accesses are free rides, the free-ride fraction does not drop from
64 B to 256 B lines, and misses per stored nonzero stay at or below the
FSAI baseline.  A suite whose expected claim families are missing fails
too — silently skipped evidence is not conformance.

**Exact replay counts — deterministic, machine-independent.**  The cache
simulator is a pure function of the matrix, partition seed and cache
geometry, so every shared summary metric (miss counts, extension-access
counts, free-ride percentages, claim flags) must match the recorded
baseline bit-for-bit.  Any drift means the replay, the attribution or the
pattern construction changed — which is exactly what this gate exists to
catch.

Usage::

    PYTHONPATH=src python scripts/check_cache_reuse.py --quick
    PYTHONPATH=src python scripts/check_cache_reuse.py --bench BENCH_cache.json
"""

from __future__ import annotations

import argparse
import math
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BASELINE = (
    Path(__file__).resolve().parent.parent
    / "benchmarks"
    / "baselines"
    / "cache_baseline.json"
)

#: Claim families every non-baseline ladder method must carry per rung.
REQUIRED_CLAIMS = (
    "free-ride-majority",
    "misses-per-nnz-not-worse",
    "free-ride-rises-with-line-size",
)

#: Relative tolerance for float metrics: the replay is deterministic, so
#: this only absorbs JSON round-trip noise, not behavioural drift.
FLOAT_RTOL = 1e-9


def check_claims(cache: dict) -> tuple[list[str], int]:
    """Gate every ledger claim of every rung; returns (failures, count)."""
    failures: list[str] = []
    checked = 0
    for grid_key in sorted(cache):
        doc = cache[grid_key]
        claims = doc.get("claims", [])
        seen: dict[str, set[str]] = {}
        for claim in claims:
            checked += 1
            seen.setdefault(claim["method"], set()).add(claim["claim"])
            if not claim["ok"]:
                failures.append(
                    f"{grid_key}: {claim['method']} failed "
                    f"{claim['claim']!r}: {claim['detail']}"
                )
        if not claims:
            failures.append(f"{grid_key}: rung carries no ledger claims")
            continue
        for method, names in seen.items():
            missing = [c for c in REQUIRED_CLAIMS if c not in names]
            if missing:
                failures.append(
                    f"{grid_key}: {method} is missing claim "
                    f"families {missing}"
                )
    return failures, checked


def check_exact(fresh: dict, baseline: dict) -> tuple[list[str], int]:
    """Bit-exact comparison of shared summary metrics; returns
    (failures, number compared)."""
    failures: list[str] = []
    compared = 0
    for name in sorted(fresh):
        if name not in baseline:
            continue
        compared += 1
        got, want = fresh[name], baseline[name]
        if isinstance(want, float) or isinstance(got, float):
            ok = math.isclose(float(got), float(want), rel_tol=FLOAT_RTOL,
                              abs_tol=1e-12)
        else:
            ok = got == want
        if not ok:
            failures.append(
                f"{name}: fresh value {got!r} != recorded baseline {want!r} "
                f"(replay counts are deterministic — the simulator or the "
                f"pattern changed)"
            )
    return failures, compared


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench",
        help="existing BENCH_cache.json to check (default: run the suite fresh)",
    )
    parser.add_argument("--baseline", default=str(BASELINE),
                        help="recorded cache baseline suite")
    parser.add_argument(
        "--quick", action="store_true",
        help="fresh runs cover the first grid only "
        "(an exact key-subset of the full baseline)",
    )
    args = parser.parse_args(argv)

    from repro.observe import ReportError, RunReport

    if args.bench:
        try:
            fresh = RunReport.load(args.bench)
        except ReportError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "benchmarks")
        )
        from cache_bench import run_cache_suite

        fresh = RunReport.from_cache_bench(
            run_cache_suite(quick=args.quick), label="fresh"
        )
    if fresh.meta.get("source") != "cache-bench":
        print(
            f"error: {args.bench or 'fresh run'} is not a cache suite "
            f"(source={fresh.meta.get('source')!r})",
            file=sys.stderr,
        )
        return 2
    try:
        baseline = RunReport.load(args.baseline)
    except ReportError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    cache = fresh.sections.get("cache", {})
    if not cache:
        print("error: cache suite has no ladder rungs", file=sys.stderr)
        return 2
    failures, checked = check_claims(cache)
    exact_failures, compared = check_exact(fresh.metrics, baseline.metrics)
    failures += exact_failures

    rungs = ", ".join(sorted(cache))
    print(f"cache-reuse gate: {len(cache)} rung(s) [{rungs}], "
          f"{checked} ledger claim(s), {compared} metric(s) checked "
          f"against {Path(args.baseline).name}")
    if compared == 0:
        failures.append(
            "no summary metrics shared with the baseline — wrong baseline file?"
        )
    for grid_key in sorted(cache):
        for verdict in cache[grid_key].get("verdicts", []):
            print(f"  note: verdict {verdict['name']} for "
                  f"{verdict['method']} at {grid_key}: {verdict['detail']}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: extension entries ride recorded cache lines — all ledger "
          "claims hold and replay counts match the baseline exactly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
