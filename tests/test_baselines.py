"""Unit tests for the Jacobi / block-Jacobi reference preconditioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cg, pcg
from repro.core.baselines import block_jacobi_preconditioner, jacobi_preconditioner
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.errors import NotSPDError
from repro.sparse import CSRMatrix


class TestJacobi:
    def test_apply_is_diagonal_scaling(self, dist_poisson16, rng):
        mat, part, da, _ = dist_poisson16
        apply = jacobi_preconditioner(da)
        r = rng.standard_normal(mat.nrows)
        z = apply(DistVector.from_global(r, part)).to_global()
        assert np.allclose(z, r / mat.diagonal())

    def test_rejects_nonpositive_diagonal(self):
        mat = CSRMatrix.from_dense(np.diag([1.0, 0.0, 2.0]) + 0.1 * np.ones((3, 3)))
        mat = CSRMatrix.from_dense(mat.to_dense() - np.diag([0.0, 0.2, 0.0]))
        part = RowPartition.contiguous(3, 1)
        da = DistMatrix.from_global(mat, part)
        with pytest.raises(NotSPDError):
            jacobi_preconditioner(da)


class TestBlockJacobi:
    def test_solves_faster_than_plain_cg(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        plain = cg(da, b)
        result = pcg(da, b, precond=block_jacobi_preconditioner(da))
        assert result.converged
        assert result.iterations < plain.iterations

    def test_single_rank_is_direct_solve(self, poisson16, rng):
        part = RowPartition.contiguous(poisson16.nrows, 1)
        da = DistMatrix.from_global(poisson16, part)
        b = DistVector.from_global(rng.standard_normal(poisson16.nrows), part)
        result = pcg(da, b, precond=block_jacobi_preconditioner(da))
        assert result.iterations == 1  # exact local inverse = whole inverse

    def test_block_size_guard(self, dist_poisson16):
        _, _, da, _ = dist_poisson16
        with pytest.raises(ValueError):
            block_jacobi_preconditioner(da, max_block=4)
