"""CI gate: the exported API surface matches the generated reference.

Runs ``scripts/check_api_surface.py`` as a subprocess (exactly how CI and
developers invoke it) and asserts a clean exit.  Failures mean either a stale
``__all__`` entry or that ``docs/API.md`` needs regenerating with
``scripts/gen_api_docs.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def run_script(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / name)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=120,
    )


def test_api_surface_is_clean():
    proc = run_script("check_api_surface.py")
    assert proc.returncode == 0, (
        f"check_api_surface.py failed:\n{proc.stdout}{proc.stderr}"
    )
    assert "API surface clean" in proc.stdout


def test_every_all_name_importable_in_process():
    # belt-and-braces in-process variant: importable without the docs check
    import importlib

    sys.path.insert(0, str(REPO / "scripts"))
    try:
        from gen_api_docs import PACKAGES
    finally:
        sys.path.pop(0)
    for pkg in PACKAGES:
        mod = importlib.import_module(pkg)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{pkg}.__all__ exports undefined {name!r}"
