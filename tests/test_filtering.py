"""Unit tests for static/dynamic filtering and load-balance metrics (Alg. 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FilterSpec,
    compute_dynamic_filters,
    dynamic_filter_for_rank,
    entry_ratios,
    extension_entry_mask,
    fsai_pattern,
    imbalance_index,
    relative_load,
)
from repro.core.filtering import static_filter_counts
from repro.errors import ShapeError
from repro.sparse import CSRMatrix, SparsityPattern

from conftest import random_sparse


class TestEntryRatios:
    def test_diagonal_entries_have_ratio_one(self, small_spd):
        from repro.core import fsai_factor

        g = fsai_factor(small_spd)
        ratios = entry_ratios(g)
        rows = np.repeat(np.arange(g.nrows), g.row_nnz())
        assert np.allclose(ratios[rows == g.indices], 1.0)

    def test_scale_invariance(self, small_spd):
        from repro.core import fsai_factor

        g = fsai_factor(small_spd)
        scaled = CSRMatrix(g.shape, g.indptr, g.indices, g.data * 7.0, check=False)
        assert np.allclose(entry_ratios(g), entry_ratios(scaled))

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            entry_ratios(random_sparse(rng, 3, 5))


class TestExtensionMask:
    def test_identifies_new_entries(self):
        base = SparsityPattern.from_rows((3, 3), [[0], [1], [2]])
        g = CSRMatrix.from_coo(
            (3, 3), [0, 1, 1, 2, 2], [0, 0, 1, 1, 2], [1.0, 0.5, 1.0, 0.1, 1.0]
        )
        mask = extension_entry_mask(g, base)
        assert mask.tolist() == [False, True, False, True, False]

    def test_all_base_gives_empty_mask(self, small_spd):
        from repro.core import compute_g_values

        pat = fsai_pattern(small_spd)
        g = compute_g_values(small_spd, pat)
        assert not extension_entry_mask(g, pat).any()

    def test_shape_mismatch(self, rng):
        g = random_sparse(rng, 4, 4)
        with pytest.raises(ShapeError):
            extension_entry_mask(g, SparsityPattern.identity(5))


class TestFilterSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            FilterSpec(value=-0.1)
        with pytest.raises(ValueError):
            FilterSpec(band=(1.1, 1.2))
        with pytest.raises(ValueError):
            FilterSpec(band=(0.9, 0.99))

    def test_defaults_match_paper(self):
        spec = FilterSpec()
        assert spec.band == (0.95, 1.05)


class TestDynamicFilter:
    def test_balanced_ranks_keep_initial_filter(self):
        ratios = [np.full(100, 0.5) for _ in range(4)]
        base = np.full(4, 1000)
        filters = compute_dynamic_filters(base, ratios, FilterSpec(0.01, dynamic=True))
        assert np.allclose(filters, 0.01)

    def test_overloaded_rank_gets_larger_filter(self):
        rng = np.random.default_rng(0)
        # rank 0 has 5x the extension entries of the others
        ratios = [rng.uniform(0.02, 1.0, 5000)] + [
            rng.uniform(0.02, 1.0, 1000) for _ in range(3)
        ]
        base = np.full(4, 1000)
        filters = compute_dynamic_filters(base, ratios, FilterSpec(0.01, dynamic=True))
        assert filters[0] > 0.01
        assert np.allclose(filters[1:], 0.01)

    def test_dynamic_filter_restores_balance(self):
        rng = np.random.default_rng(1)
        ratios = [rng.uniform(0.02, 1.0, 8000)] + [
            rng.uniform(0.02, 1.0, 1000) for _ in range(3)
        ]
        base = np.full(4, 1000)
        spec = FilterSpec(0.01, dynamic=True)
        filters = compute_dynamic_filters(base, ratios, spec)
        counts = np.array(
            [
                1000 + int(np.count_nonzero(r > f))
                for r, f in zip(ratios, filters)
            ]
        )
        # load of the adjusted rank is inside (or below) the band w.r.t. the
        # average computed at the initial filter
        avg = static_filter_counts(base, ratios, 0.01).mean()
        assert counts[0] / avg <= 1.05 + 1e-9

    def test_static_spec_returns_uniform(self):
        ratios = [np.full(10, 0.5) for _ in range(3)]
        filters = compute_dynamic_filters(
            np.full(3, 10), ratios, FilterSpec(0.05, dynamic=False)
        )
        assert np.allclose(filters, 0.05)

    def test_single_rank_never_adjusts(self):
        filters = compute_dynamic_filters(
            np.array([10]), [np.full(1000, 0.9)], FilterSpec(0.01, dynamic=True)
        )
        assert np.allclose(filters, 0.01)

    def test_filter_never_decreases(self):
        rng = np.random.default_rng(2)
        for trial in range(5):
            ratios = rng.uniform(0, 1, rng.integers(10, 2000))
            f = dynamic_filter_for_rank(100, ratios, 0.05, average_count=150.0)
            assert f >= 0.05

    def test_imbalanced_base_pattern_terminates(self):
        # base pattern itself is imbalanced: filtering cannot fix it, but the
        # bisection must still terminate
        ratios = np.full(10, 0.5)
        f = dynamic_filter_for_rank(10_000, ratios, 0.01, average_count=100.0)
        assert np.isfinite(f)

    def test_zero_average_is_noop(self):
        assert dynamic_filter_for_rank(5, np.array([0.5]), 0.01, 0.0) == 0.01


class TestLoadMetrics:
    def test_imbalance_index_balanced(self):
        assert imbalance_index(np.array([10, 10, 10])) == 1.0

    def test_imbalance_index_definition(self):
        # mean/max as in §5.3.3
        arr = np.array([50, 100, 150])
        assert imbalance_index(arr) == pytest.approx(100.0 / 150.0)

    def test_imbalance_index_edge_cases(self):
        assert imbalance_index(np.array([])) == 1.0
        assert imbalance_index(np.array([0, 0])) == 1.0

    def test_relative_load(self):
        loads = relative_load(np.array([5, 10, 15]))
        assert np.allclose(loads, [0.5, 1.0, 1.5])
        assert np.allclose(relative_load(np.array([0, 0])), 1.0)
