"""Unit tests for the ExtensionWorkspace sweep API."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ExtensionMode,
    ExtensionWorkspace,
    FilterSpec,
    PrecondOptions,
    build_fsaie,
    build_fsaie_comm,
)
from repro.dist import RowPartition
from repro.matgen import poisson2d


@pytest.fixture(scope="module")
def setup():
    mat = poisson2d(18)
    part = RowPartition.from_matrix(mat, 3, seed=0)
    return mat, part


class TestWorkspace:
    def test_finalize_matches_direct_build(self, setup):
        mat, part = setup
        for mode, build in (
            (ExtensionMode.LOCAL, build_fsaie),
            (ExtensionMode.COMM, build_fsaie_comm),
        ):
            ws = ExtensionWorkspace("X", mat, part, mode)
            for f, dyn in ((0.01, True), (0.1, False)):
                spec = FilterSpec(f, dynamic=dyn)
                from_ws = ws.finalize(spec)
                direct = build(mat, part, PrecondOptions(filter=spec))
                assert from_ws.g.to_global().allclose(direct.g.to_global())
                assert np.allclose(from_ws.filters, direct.filters)

    def test_repeated_finalize_is_pure(self, setup):
        mat, part = setup
        ws = ExtensionWorkspace("X", mat, part, ExtensionMode.COMM)
        a = ws.finalize(FilterSpec(0.05, dynamic=True))
        b = ws.finalize(FilterSpec(0.05, dynamic=True))
        assert a.g.to_global().allclose(b.g.to_global())
        # a different filter still works after previous finalizations
        c = ws.finalize(FilterSpec(0.5, dynamic=False))
        assert c.nnz <= a.nnz

    def test_monotone_in_filter(self, setup):
        mat, part = setup
        ws = ExtensionWorkspace("X", mat, part, ExtensionMode.COMM)
        sizes = [ws.finalize(FilterSpec(f, dynamic=False)).nnz for f in (0.0, 0.05, 0.2, 1e9)]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] == ws.base.nnz  # everything filtered -> base pattern

    def test_workspace_exposes_stats(self, setup):
        mat, part = setup
        ws = ExtensionWorkspace("X", mat, part, ExtensionMode.COMM, line_bytes=128)
        assert ws.ext_nnz_unfiltered == sum(e.n_added for e in ws.extensions)
        assert ws.g_pre.nnz == ws.base.nnz + ws.ext_nnz_unfiltered
        assert ws.base_counts.sum() == ws.base.nnz
        assert sum(len(r) for r in ws.ext_ratios_per_rank) == ws.ext_nnz_unfiltered
