"""Unit tests for symbolic and numeric SpGEMM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sparse import CSRMatrix, SparsityPattern, spgemm, symbolic_spgemm

from conftest import random_sparse


class TestNumeric:
    @pytest.mark.parametrize("shape", [(5, 7, 6), (1, 1, 1), (10, 3, 10), (4, 8, 2)])
    def test_matches_dense(self, rng, shape):
        m, k, n = shape
        a = random_sparse(rng, m, k, density=0.4)
        b = random_sparse(rng, k, n, density=0.4)
        assert np.allclose(spgemm(a, b).to_dense(), a.to_dense() @ b.to_dense())

    def test_identity_neutral(self, rng):
        a = random_sparse(rng, 6, 6)
        eye = CSRMatrix.identity(6)
        assert spgemm(a, eye).allclose(a)
        assert spgemm(eye, a).allclose(a)

    def test_zero_operand(self, rng):
        a = random_sparse(rng, 4, 4)
        z = CSRMatrix.zeros((4, 4))
        assert spgemm(a, z).nnz == 0
        assert spgemm(z, a).nnz == 0

    def test_dimension_mismatch(self, rng):
        with pytest.raises(ShapeError):
            spgemm(random_sparse(rng, 3, 4), random_sparse(rng, 5, 3))

    def test_cancellation_keeps_entry(self):
        # numeric zero from cancellation is still a stored entry (symbolic)
        a = CSRMatrix.from_coo((1, 2), [0, 0], [0, 1], [1.0, -1.0])
        b = CSRMatrix.from_coo((2, 1), [0, 1], [0, 0], [1.0, 1.0])
        prod = spgemm(a, b)
        assert prod.nnz == 1
        assert prod.data[0] == 0.0


class TestSymbolic:
    def test_matches_numeric_structure(self, rng):
        a = random_sparse(rng, 8, 8, density=0.3)
        b = random_sparse(rng, 8, 8, density=0.3)
        sym = symbolic_spgemm(
            SparsityPattern.from_csr(a), SparsityPattern.from_csr(b)
        )
        dense = (np.abs(a.to_dense()) > 0).astype(float) @ (
            np.abs(b.to_dense()) > 0
        ).astype(float)
        assert np.array_equal(sym.to_csr().to_dense() != 0, dense > 0)

    def test_empty_rows(self):
        a = SparsityPattern.from_rows((3, 3), [[], [0, 2], []])
        b = SparsityPattern.from_rows((3, 3), [[1], [], [0, 1]])
        prod = symbolic_spgemm(a, b)
        assert prod.row(0).size == 0
        assert prod.row(1).tolist() == [0, 1]
        assert prod.row(2).size == 0

    def test_dimension_mismatch(self):
        a = SparsityPattern.empty((2, 3))
        b = SparsityPattern.empty((4, 2))
        with pytest.raises(ShapeError):
            symbolic_spgemm(a, b)
