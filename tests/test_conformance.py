"""Model-conformance reports: ratios, verdicts, suspects, persistence."""

from __future__ import annotations

import json
import math

import pytest

from repro.observe import (
    CONFORMANCE_FORMAT,
    ClusterTelemetry,
    ConformanceError,
    ConformanceReport,
    MethodFacts,
    PhaseConformance,
    RankCountConformance,
    RankTelemetry,
    RunReport,
    attribute,
    conformance_samples,
    predicted_phases,
)
from repro.perfmodel import IterationCost


def _cluster(ranks, *, wait=0.010, compute=0.100, reduction=0.020,
             straggler=None):
    """A hand-built aggregate: uniform ranks, optionally one straggler."""
    def one(rank):
        t = RankTelemetry(rank)
        w = straggler[1] if straggler and rank == straggler[0] else wait
        t.observe_wait(w, tag=3)
        t.observe("compute", compute)
        t.observe("reduction", reduction)
        return ClusterTelemetry.from_rank(t)

    acc = one(0)
    for r in range(1, ranks):
        acc.merge(one(r))
    return acc


def _entry(ranks=8, *, predicted=None, extras=None, **cluster_kw):
    return RankCountConformance.from_cluster(
        ranks=ranks,
        iterations=10,
        predicted=predicted
        or {"compute": 0.100, "halo": 0.010, "reduction": 0.020},
        cluster=_cluster(ranks, **cluster_kw),
        extras=extras,
    )


class TestPredictedPhases:
    def test_folds_iteration_cost_into_phase_taxonomy(self):
        cost = IterationCost(spmv_a=1.0, precond=2.0, halo=0.5,
                             reductions=0.25, vector_ops=0.125)
        phases = predicted_phases(cost, 10)
        assert phases == pytest.approx(
            {"compute": 31.25, "halo": 5.0, "reduction": 2.5}
        )

    def test_duck_typed_over_plain_namespace(self):
        class Cost:
            spmv_a, precond, halo, reductions, vector_ops = 1, 0, 2, 3, 0

        assert predicted_phases(Cost(), 2) == pytest.approx(
            {"compute": 2.0, "halo": 4.0, "reduction": 6.0}
        )


class TestPhaseConformance:
    def test_ratio(self):
        assert PhaseConformance("halo", 2.0, 1.0).ratio == pytest.approx(0.5)

    def test_zero_predicted_nonzero_measured_is_inf(self):
        assert math.isinf(PhaseConformance("halo", 0.0, 1.0).ratio)

    def test_both_zero_is_one(self):
        assert PhaseConformance("halo", 0.0, 0.0).ratio == 1.0


class TestRankCountConformance:
    def test_measured_is_cluster_total_over_ranks(self):
        entry = _entry(ranks=8, compute=0.100)
        compute = entry.phase("compute")
        # 8 ranks x 0.100 s cluster-total, so per-rank measured is 0.100
        assert compute.measured_seconds == pytest.approx(0.100)
        assert compute.ratio == pytest.approx(1.0)

    def test_straggler_propagates(self):
        entry = _entry(ranks=32, straggler=(17, 9.0))
        assert [s["rank"] for s in entry.stragglers] == [17]

    def test_round_trip(self):
        entry = _entry(extras={"halo_invariant": True})
        clone = RankCountConformance.from_dict(
            json.loads(json.dumps(entry.to_dict()))
        )
        assert clone.ranks == entry.ranks
        assert clone.ratios() == pytest.approx(entry.ratios())
        assert clone.extras == entry.extras


class TestConformanceReport:
    def test_no_verdicts_when_shares_match(self):
        report = ConformanceReport(entries=[_entry()])
        assert report.verdicts() == []
        assert "verdicts: none" in report.render()

    def test_share_drift_names_the_phase(self):
        # model says compute-dominated; measurement is halo-dominated
        entry = _entry(
            predicted={"compute": 0.100, "halo": 0.001, "reduction": 0.001},
            wait=0.200, compute=0.010, reduction=0.001,
        )
        names = {v["name"] for v in ConformanceReport(entries=[entry]).verdicts()}
        assert "halo-underpredicted" in names
        assert "compute-overpredicted" in names

    def test_global_scale_factor_triggers_nothing(self):
        # 50x slower across the board: ratios explode, shares are identical
        entry = _entry(
            predicted={"compute": 0.002, "halo": 0.0002, "reduction": 0.0004}
        )
        report = ConformanceReport(entries=[entry])
        assert all(r > 10 for r in entry.ratios().values())
        assert report.verdicts() == []

    def test_straggler_and_flag_verdicts(self):
        entry = _entry(
            ranks=32, straggler=(3, 9.0),
            extras={"halo_invariant": False, "telemetry_excluded": True},
        )
        names = {v["name"] for v in ConformanceReport(entries=[entry]).verdicts()}
        assert "straggler-ranks" in names
        assert "halo-invariant-violated" in names
        assert "telemetry-excluded-violated" not in names

    def test_suspects_feed_explain(self):
        entry = _entry(
            ranks=32, straggler=(3, 9.0),
            extras={"halo_invariant": False},
        )
        report = ConformanceReport(entries=[entry])
        suspects = report.to_suspects()
        assert suspects and all(
            s.name.startswith("conformance:") and s.method == "r32"
            for s in suspects
        )
        facts = [MethodFacts(method="FSAI", iterations=10)]
        verdict = attribute(facts, conformance=report)
        got = {s.name for s in verdict.suspects}
        assert {s.name for s in suspects} <= got

    def test_save_load_round_trip(self, tmp_path):
        report = ConformanceReport(
            entries=[_entry(ranks=4), _entry(ranks=16)],
            meta={"case": "unit"},
        )
        path = report.save(tmp_path / "conf.json")
        clone = ConformanceReport.load(path)
        assert clone.meta["case"] == "unit"
        assert [e.ranks for e in clone.entries] == [4, 16]
        assert json.loads(path.read_text())["format"] == CONFORMANCE_FORMAT

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other", "version": 1}))
        with pytest.raises(ConformanceError):
            ConformanceReport.load(path)

    def test_prom_samples_cover_ratios_and_verdicts(self):
        report = ConformanceReport(entries=[_entry(ranks=8)])
        samples = conformance_samples(report)
        names = {(s["name"], s["tags"].get("phase")) for s in samples}
        assert ("conformance.ratio", "compute") in names
        assert any(s["name"] == "conformance.verdicts" for s in samples)
        by_rank = [s for s in samples if s["tags"].get("ranks") == 8]
        assert by_rank


class TestRunReportIntegration:
    def _doc(self):
        report = ConformanceReport(entries=[_entry(ranks=8)])
        return {
            "suite": "conformance",
            "config": {"grid": 12},
            "conformance": report.to_dict(),
            "summary": {
                "r8.iterations": 10,
                "r8.ratio.compute": 1.0,
                "r8.halo_invariant": 1,
            },
        }

    def test_from_conformance_bench(self):
        run = RunReport.from_conformance_bench(self._doc())
        assert run.meta["source"] == "conformance-bench"
        assert run.metrics["conformance.r8.iterations"] == 10
        assert "conformance" in run.sections

    def test_load_dispatches_on_conformance_key(self, tmp_path):
        path = tmp_path / "BENCH_conformance.json"
        path.write_text(json.dumps(self._doc()))
        run = RunReport.load(path)
        assert run.meta["source"] == "conformance-bench"
        assert run.sections["conformance"]["entries"][0]["ranks"] == 8
