"""Unit tests for the per-line free-ride ledger and cache conformance.

Covers the attribution hooks of the cache simulator, the entry-category
classifier, the attributed replay (miss-count parity with the plain
replay), the ledger/conformance documents and their OpenMetrics export.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachesim import (
    NO_LINE,
    CacheConfig,
    L1_SKYLAKE,
    SetAssociativeCache,
    entry_categories,
    precond_x_misses_per_rank,
)
from repro.cachesim.spmv_trace import (
    CATEGORY_BASE,
    CATEGORY_EXT_HALO,
    CATEGORY_EXT_LOCAL,
)
from repro.core import build_fsai, build_fsaie, build_fsaie_comm
from repro.core.fsai import fsai_pattern
from repro.core.precond import PrecondOptions
from repro.dist import RowPartition
from repro.observe import (
    CacheConformance,
    FreeRideLedger,
    MemTrafficError,
    MethodCacheProfile,
    RankLedger,
    cache_conformance_samples,
    ledger_samples,
)
from repro.observe.prom import render_openmetrics


def make_ledger(mat, builder, *, ranks=2, line_bytes=64):
    part = RowPartition.from_matrix(mat, ranks, seed=0)
    options = PrecondOptions(line_bytes=line_bytes)
    pattern = fsai_pattern(mat, options.fsai)
    pre = builder(mat, part, options)
    ledger = FreeRideLedger(
        method=pre.name,
        line_bytes=line_bytes,
        base_g=pattern.to_csr(),
        base_gt=pattern.transpose().to_csr(),
    )
    config = CacheConfig(L1_SKYLAKE.size_bytes, line_bytes, L1_SKYLAKE.associativity)
    misses = precond_x_misses_per_rank(pre.g, pre.gt, config, ledger=ledger)
    return pre, ledger, misses, config


class TestAttributionHooks:
    def test_access_attributed_reports_eviction(self):
        cache = SetAssociativeCache(CacheConfig(128, 64, 1))  # 2 sets, 1 way
        hit, evicted = cache.access_attributed(0)
        assert (hit, evicted) == (False, NO_LINE)
        hit, evicted = cache.access_attributed(0)
        assert (hit, evicted) == (True, NO_LINE)
        # line 2 maps to set 0 and evicts line 0 in a direct-mapped set
        hit, evicted = cache.access_attributed(2)
        assert (hit, evicted) == (False, 0)

    def test_resident_lines_and_is_resident(self):
        cache = SetAssociativeCache(CacheConfig(256, 64, 2))  # 2 sets, 2 ways
        for line in (0, 1, 2):
            cache.access(line)
        assert cache.resident_lines().tolist() == [0, 1, 2]
        assert cache.is_resident(2) and not cache.is_resident(4)
        hits_before = cache.hits
        cache.is_resident(0)  # a probe, not an access
        assert cache.hits == hits_before

    def test_listener_sees_every_access(self):
        seen = []
        cache = SetAssociativeCache(
            CacheConfig(128, 64, 1),
            listener=lambda line, hit, evicted: seen.append((line, hit, evicted)),
        )
        cache.access_stream(np.array([0, 0, 2], dtype=np.int64))
        assert seen == [(0, False, NO_LINE), (0, True, NO_LINE), (2, False, 0)]


class TestEntryCategories:
    def test_fsai_entries_are_all_base(self, poisson16):
        pre, ledger, _, _ = make_ledger(poisson16, build_fsai)
        base_g = ledger.base_g
        for lm in pre.g.locals:
            cats = entry_categories(lm, base_g)
            assert cats.shape == (lm.csr.nnz,)
            assert np.all(cats == CATEGORY_BASE)

    def test_fsaie_extends_locally_only(self, poisson16):
        pre, ledger, _, _ = make_ledger(poisson16, build_fsaie)
        cats = np.concatenate(
            [entry_categories(lm, ledger.base_g) for lm in pre.g.locals]
        )
        assert np.sum(cats == CATEGORY_EXT_LOCAL) > 0
        assert np.sum(cats == CATEGORY_EXT_HALO) == 0

    def test_fsaie_comm_extends_into_halo(self, poisson16):
        pre, ledger, _, _ = make_ledger(poisson16, build_fsaie_comm)
        cats = np.concatenate(
            [entry_categories(lm, ledger.base_g) for lm in pre.g.locals]
        )
        assert np.sum(cats == CATEGORY_EXT_HALO) > 0


class TestAttributedReplay:
    def test_miss_counts_match_plain_replay(self, poisson16):
        pre, ledger, attributed, config = make_ledger(poisson16, build_fsaie_comm)
        plain = precond_x_misses_per_rank(pre.g, pre.gt, config)
        assert attributed.tolist() == plain.tolist()
        assert ledger.misses_total == int(plain.sum())
        assert ledger.nnz == pre.g.nnz

    def test_extension_accesses_mostly_free(self, poisson16):
        _, ledger, _, _ = make_ledger(poisson16, build_fsaie)
        assert ledger.ext_accesses > 0
        assert ledger.free_ride_fraction > 0.5
        assert ledger.free_rides == ledger.rides_on_base + ledger.rides_on_ext

    def test_reuse_histograms_populated(self, poisson16):
        _, ledger, _, _ = make_ledger(poisson16, build_fsaie)
        assert ledger.reuse_histogram("base").count > 0
        assert ledger.reuse_histogram("ext_local").count > 0

    def test_replay_requires_base_pattern(self, poisson16):
        part = RowPartition.from_matrix(poisson16, 2, seed=0)
        pre = build_fsai(poisson16, part)
        bare = FreeRideLedger(method="FSAI", line_bytes=64)
        with pytest.raises(ValueError):
            precond_x_misses_per_rank(pre.g, pre.gt, L1_SKYLAKE, ledger=bare)


class TestRankLedger:
    def test_record_and_derived_counters(self):
        r = RankLedger(rank=0)
        r.record("base", False, None, None)
        r.record("ext_local", True, "base", 3)
        r.record("ext_halo", True, "ext_local", 5)
        r.record("ext_halo", False, None, None)
        assert r.accesses_total == 4
        assert r.misses_total == 2
        assert r.ext_accesses == 3
        assert r.free_rides == 2
        assert (r.rides_on_base, r.rides_on_ext) == (1, 1)
        assert r.category_fraction("ext_halo") == 0.5

    def test_rejects_unknown_category(self):
        with pytest.raises(MemTrafficError):
            RankLedger(rank=0).record("ext_remote", True, None, None)


class TestFreeRideLedger:
    def test_round_trip(self, poisson16, tmp_path):
        _, ledger, _, _ = make_ledger(poisson16, build_fsaie_comm)
        path = ledger.save(tmp_path / "ledger.json")
        back = FreeRideLedger.load(path)
        assert back.summary() == ledger.summary()
        assert back.base_g is None  # working state is not serialised
        assert back.reuse_histogram("base").count == ledger.reuse_histogram("base").count

    def test_render_mentions_free_rides(self, poisson16):
        _, ledger, _, _ = make_ledger(poisson16, build_fsaie)
        text = ledger.render()
        assert "free-ride ledger" in text and "FSAIE" in text

    def test_rejects_foreign_document(self, tmp_path):
        with pytest.raises(MemTrafficError):
            FreeRideLedger.from_dict({"format": "something-else"})
        with pytest.raises(MemTrafficError):
            FreeRideLedger.load(tmp_path / "missing.json")


def profile(method, lb, *, ext=100, rides=90, misses=10, nnz=1000, model=0.0):
    return MethodCacheProfile(
        method=method,
        line_bytes=lb,
        nnz=nnz,
        misses_total=misses,
        ranks=1,
        ext_accesses=ext,
        free_rides=rides,
        modeled_x_bytes=model,
    )


class TestCacheConformance:
    def test_clean_ladder_passes_all_claims(self):
        report = CacheConformance()
        report.add(profile("FSAI", 64, ext=0, rides=0, misses=20))
        report.add(profile("FSAI", 256, ext=0, rides=0, misses=8))
        report.add(profile("FSAIE", 64, rides=80, misses=20))
        report.add(profile("FSAIE", 256, rides=95, misses=8))
        claims = report.claims()
        assert len(claims) == 5  # 2× majority, 2× not-worse, 1× rises
        assert all(c["ok"] for c in claims)
        assert report.verdicts() == []

    def test_minority_and_regression_verdicts(self):
        report = CacheConformance()
        report.add(profile("FSAI", 64, ext=0, rides=0, misses=10))
        report.add(profile("FSAIE", 64, rides=30, misses=50))
        names = {v["name"] for v in report.verdicts()}
        assert names == {"free-ride-minority", "misses-per-nnz-regressed"}
        suspects = report.to_suspects()
        assert {s.name for s in suspects} == {
            "cache:free-ride-minority",
            "cache:misses-per-nnz-regressed",
        }
        assert all(s.method == "FSAIE@64B" for s in suspects)

    def test_saturation_carve_out(self):
        report = CacheConformance()
        # 100% free rides at both geometries: no headroom to rise, still ok
        report.add(profile("FSAIE", 64, rides=100))
        report.add(profile("FSAIE", 256, rides=100))
        (rises,) = [
            c for c in report.claims()
            if c["claim"] == "free-ride-rises-with-line-size"
        ]
        assert rises["ok"] and "saturated" in rises["detail"]

    def test_flat_fraction_without_saturation_fails(self):
        report = CacheConformance()
        report.add(profile("FSAIE", 64, rides=70))
        report.add(profile("FSAIE", 256, rides=70))
        (rises,) = [
            c for c in report.claims()
            if c["claim"] == "free-ride-rises-with-line-size"
        ]
        assert not rises["ok"]
        assert {v["name"] for v in report.verdicts()} == {
            "line-geometry-gain-missing"
        }

    def test_model_confrontation(self):
        report = CacheConformance()
        # 50 misses × 64 B = 3200 B measured vs 1000 B modeled → divergence
        report.add(profile("FSAIE", 64, misses=50, model=1000.0))
        (verdict,) = [
            v for v in report.verdicts()
            if v["name"] == "memory-term-underpredicted"
        ]
        assert "3200" in verdict["detail"]
        entry = report.profile("FSAIE", 64)
        assert entry.model_ratio == pytest.approx(3.2)

    def test_round_trip(self, tmp_path):
        report = CacheConformance(meta={"matrix": "poisson2d:16"})
        report.add(profile("FSAI", 64, ext=0, rides=0))
        report.add(profile("FSAIE", 64))
        path = report.save(tmp_path / "cache.json")
        back = CacheConformance.load(path)
        assert back.meta == report.meta
        assert back.claims() == report.claims()
        assert [e.to_dict() for e in back.entries] == [
            e.to_dict() for e in report.entries
        ]
        with pytest.raises(MemTrafficError):
            CacheConformance.from_dict({"format": "nope"})


class TestExport:
    def test_ledger_samples_render_as_openmetrics(self, poisson16):
        _, ledger, _, _ = make_ledger(poisson16, build_fsaie)
        text = render_openmetrics(ledger_samples(ledger))
        assert 'memtraffic_free_rides{line_bytes="64",method="FSAIE"}' in text
        assert "memtraffic_reuse_distance_bucket" in text
        assert text.endswith("# EOF\n")

    def test_conformance_samples_render_as_openmetrics(self):
        report = CacheConformance()
        report.add(profile("FSAI", 64, ext=0, rides=0))
        report.add(profile("FSAIE", 64))
        text = render_openmetrics(cache_conformance_samples(report))
        assert 'cache_free_ride_fraction{line_bytes="64",method="FSAIE"}' in text
        assert "cache_claims_failed 0" in text
