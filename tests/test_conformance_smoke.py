"""Smoke tier for the model-conformance suite and its drift gate.

Runs the 64-rank rung of :mod:`benchmarks.conformance_bench` on the event
engine with in-band telemetry enabled, then drives
``scripts/check_model_conformance.py --quick`` end-to-end against the
recorded baseline, exactly how CI invokes it.  Carries the
``conformance_smoke`` marker — deselect with ``-m "not conformance_smoke"``
for a faster tier-1 run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from conformance_bench import run_conformance_suite  # noqa: E402


@pytest.mark.conformance_smoke
def test_quick_suite_holds_structural_facts():
    result = run_conformance_suite(quick=True)
    assert result["config"]["engine"] == "events"
    (entry,) = result["conformance"]["entries"]
    assert entry["ranks"] == 64
    assert 0 < entry["iterations"] <= result["config"]["max_iterations"]
    extras = entry["extras"]
    # §4 invariance holds with telemetry on, and telemetry traffic flowed
    # without appearing in the audited point-to-point snapshots
    assert extras["invariant"] and extras["halo_invariant"]
    assert extras["telemetry_excluded"]
    assert extras["telemetry_bytes"] > 0
    assert extras["messages"] > 0
    # bounded-memory artifact: far below the full-trace volume
    assert entry["telemetry_payload_bytes"] < extras["full_trace_bytes"] / 4
    assert entry["sampled_ranks"] == result["config"]["rank_sample"]
    phases = {p["phase"]: p for p in entry["phases"]}
    assert set(phases) == {"compute", "halo", "reduction"}
    assert all(p["measured_seconds"] > 0 for p in phases.values())
    assert all(p["predicted_seconds"] > 0 for p in phases.values())
    summary = result["summary"]
    for metric in ("iterations", "messages", "bytes", "payload_bytes",
                   "halo_invariant", "telemetry_excluded", "ratio.compute",
                   "ratio.halo", "ratio.reduction", "wall_s"):
        assert f"r64.{metric}" in summary


@pytest.mark.conformance_smoke
def test_conformance_gate_is_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_model_conformance.py"),
         "--quick"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=480,
    )
    assert proc.returncode == 0, (
        f"check_model_conformance.py --quick failed:\n{proc.stdout}{proc.stderr}"
    )
    assert "OK: model conformance within the recorded band" in proc.stdout
