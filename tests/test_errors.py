"""Unit tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    CommError,
    ConvergenceError,
    NotSPDError,
    PartitionError,
    ReproError,
    ShapeError,
    SparseFormatError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [SparseFormatError, ShapeError, PartitionError, CommError, NotSPDError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("message")

    def test_convergence_error_carries_state(self):
        err = ConvergenceError("did not converge", iterations=42, residual_norm=1e-3)
        assert isinstance(err, ReproError)
        assert err.iterations == 42
        assert err.residual_norm == 1e-3
        assert "did not converge" in str(err)

    def test_library_failures_catchable_in_one_clause(self):
        """The documented contract: one except clause covers the library."""
        from repro.sparse import CSRMatrix

        caught = 0
        for bad_call in (
            lambda: CSRMatrix((2, 2), [0, 1], [5], [1.0]),  # format
            lambda: CSRMatrix.identity(3).spmv([1.0]),  # shape
        ):
            try:
                bad_call()
            except ReproError:
                caught += 1
        assert caught == 2
