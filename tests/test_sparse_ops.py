"""Unit tests for BLAS-1 helpers and sparse utility operations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotSPDError, ShapeError
from repro.sparse import (
    CSRMatrix,
    axpy,
    check_spd,
    dot,
    drop_small_relative,
    is_symmetric,
    max_norm,
    norm2,
    xpay,
)

from conftest import random_sparse


class TestVectorKernels:
    def test_axpy_in_place(self, rng):
        x, y = rng.standard_normal(10), rng.standard_normal(10)
        expected = y + 0.5 * x
        result = axpy(0.5, x, y)
        assert result is y
        assert np.allclose(y, expected)

    def test_xpay_in_place(self, rng):
        x, y = rng.standard_normal(10), rng.standard_normal(10)
        expected = x + 2.0 * y
        result = xpay(x, 2.0, y)
        assert result is y
        assert np.allclose(y, expected)

    def test_dot_and_norm(self, rng):
        x, y = rng.standard_normal(10), rng.standard_normal(10)
        assert dot(x, y) == pytest.approx(float(x @ y))
        assert norm2(x) == pytest.approx(float(np.linalg.norm(x)))

    def test_shape_checks(self, rng):
        with pytest.raises(ShapeError):
            axpy(1.0, np.ones(3), np.ones(4))
        with pytest.raises(ShapeError):
            xpay(np.ones(3), 1.0, np.ones(4))
        with pytest.raises(ShapeError):
            dot(np.ones(3), np.ones(4))


class TestMatrixChecks:
    def test_max_norm(self, rng):
        mat = random_sparse(rng, 6, 6)
        assert max_norm(mat) == pytest.approx(np.abs(mat.to_dense()).max())

    def test_max_norm_empty(self):
        assert max_norm(CSRMatrix.zeros((3, 3))) == 0.0

    def test_is_symmetric(self, rng, small_spd):
        assert is_symmetric(small_spd)
        assert not is_symmetric(random_sparse(rng, 6, 6))
        assert not is_symmetric(random_sparse(rng, 4, 6))

    def test_check_spd_accepts(self, small_spd):
        check_spd(small_spd)

    def test_check_spd_rejects_asymmetric(self, rng):
        with pytest.raises(NotSPDError):
            check_spd(random_sparse(rng, 6, 6))

    def test_check_spd_rejects_negative_diagonal(self):
        mat = CSRMatrix.from_dense(np.diag([1.0, -1.0, 2.0]))
        with pytest.raises(NotSPDError):
            check_spd(mat)

    def test_check_spd_rejects_indefinite(self):
        dense = np.array([[1.0, 4.0], [4.0, 1.0]])  # eigenvalues 5 and -3
        with pytest.raises(NotSPDError):
            check_spd(CSRMatrix.from_dense(dense))


class TestRelativeDropping:
    def test_drops_small_keeps_diagonal(self):
        dense = np.array(
            [[10.0, 0.01, 0.0], [0.01, 10.0, 5.0], [0.0, 5.0, 10.0]]
        )
        mat = CSRMatrix.from_dense(dense)
        out = drop_small_relative(mat, 0.1)
        got = out.to_dense()
        assert got[0, 1] == 0.0
        assert got[1, 2] == 5.0
        assert np.allclose(np.diag(got), 10.0)

    def test_scale_independent(self, small_spd):
        scaled = CSRMatrix(
            small_spd.shape,
            small_spd.indptr,
            small_spd.indices,
            small_spd.data * 1e6,
            check=False,
        )
        a = drop_small_relative(small_spd, 0.05)
        b = drop_small_relative(scaled, 0.05)
        assert np.array_equal(a.indices, b.indices)

    def test_zero_tolerance_keeps_all(self, small_spd):
        out = drop_small_relative(small_spd, 0.0)
        assert out.nnz == small_spd.nnz

    def test_rejects_negative_tolerance(self, small_spd):
        with pytest.raises(ValueError):
            drop_small_relative(small_spd, -1.0)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            drop_small_relative(random_sparse(rng, 3, 5), 0.1)
