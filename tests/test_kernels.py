"""Tests for the kernel-plan / workspace runtime (repro.kernels)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import FSAIOptions, compute_g_values, fsai_factor, fsai_pattern
from repro.core.cg import pcg, supports_workspace
from repro.core.precond import build_fsai
from repro.core.solvers import bicgstab, pipelined_pcg
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.errors import ShapeError
from repro.instrument import NULL_TRACER, tracing
from repro.kernels import SolverWorkspace, SpMVPlan
from repro.matgen import paper_rhs, poisson2d
from repro.sparse import CSRMatrix

from conftest import random_sparse


class TestSpMVPlan:
    def test_forward_bitwise_matches_csr(self, rng):
        # Dense enough that rows exceed the ELL width cap -> reduceat path,
        # which replays the exact gather/multiply/reduceat sequence of
        # CSRMatrix.spmv and is therefore bitwise identical.
        mat = random_sparse(rng, 37, 29, density=0.6)
        plan = SpMVPlan(mat)
        assert plan._ell_idx is None
        x = rng.standard_normal(29)
        assert np.array_equal(plan.spmv(x), mat.spmv(x))

    def test_ell_path_matches_csr(self, rng):
        # Narrow rows (Poisson stencil) select the ELL layout, which sums
        # rows left-to-right: deterministic, but only rounding-equal to the
        # reduceat kernel.
        mat = poisson2d(12)
        plan = SpMVPlan(mat)
        assert plan._ell_idx is not None
        x = rng.standard_normal(mat.ncols)
        assert np.allclose(plan.spmv(x), mat.spmv(x), atol=1e-13)
        first = plan.spmv(x)
        assert np.array_equal(first, plan.spmv(x))  # deterministic replay
        y = rng.standard_normal(mat.nrows)
        assert np.allclose(plan.spmv_t(y), mat.spmv_transpose(y), atol=1e-13)

    def test_ell_out_aliasing(self, rng):
        mat = poisson2d(8)
        plan = SpMVPlan(mat)
        x = rng.standard_normal(mat.ncols)
        ref = plan.spmv(x.copy())
        buf = x.copy()
        plan.spmv(buf, out=buf)
        assert np.array_equal(buf, ref)

    def test_transpose_matches_csr(self, rng):
        mat = random_sparse(rng, 37, 29, density=0.15)
        plan = SpMVPlan(mat)
        x = rng.standard_normal(37)
        # the transpose gather plan sums in a different order than the
        # add.at kernel, so agreement is to rounding, not bitwise.
        assert np.allclose(plan.spmv_t(x), mat.spmv_transpose(x), atol=1e-13)

    def test_empty_rows_and_cols(self, rng):
        dense = np.zeros((6, 5))
        dense[0, 1] = 2.0
        dense[4, 3] = -1.5
        mat = CSRMatrix.from_dense(dense)
        plan = SpMVPlan(mat)
        x = rng.standard_normal(5)
        y = rng.standard_normal(6)
        assert np.allclose(plan.spmv(x), dense @ x)
        assert np.allclose(plan.spmv_t(y), dense.T @ y)

    def test_empty_matrix(self):
        mat = CSRMatrix.from_dense(np.zeros((4, 3)))
        plan = SpMVPlan(mat)
        assert np.array_equal(plan.spmv(np.ones(3)), np.zeros(4))
        assert np.array_equal(plan.spmv_t(np.ones(4)), np.zeros(3))

    def test_out_reuse_is_allocation_free_per_call(self, rng):
        mat = random_sparse(rng, 20, 20, density=0.3)
        plan = SpMVPlan(mat)
        x = rng.standard_normal(20)
        out = np.empty(20)
        ref = plan.spmv(x)
        result = plan.spmv(x, out=out)
        assert result is out
        assert np.array_equal(out, ref)
        assert plan.calls == 2

    def test_out_aliasing_input_square(self, rng):
        mat = random_sparse(rng, 20, 20, density=0.3)
        plan = SpMVPlan(mat)
        x = rng.standard_normal(20)
        ref = plan.spmv(x.copy())
        buf = x.copy()
        plan.spmv(buf, out=buf)
        assert np.array_equal(buf, ref)

    def test_out_wrong_shape(self, rng):
        plan = SpMVPlan(random_sparse(rng, 8, 5, density=0.4))
        with pytest.raises(ShapeError):
            plan.spmv(np.ones(5), out=np.empty(4))
        with pytest.raises(ShapeError):
            plan.spmv_t(np.ones(8), out=np.empty(8))

    def test_out_wrong_dtype(self, rng):
        plan = SpMVPlan(random_sparse(rng, 8, 5, density=0.4))
        with pytest.raises(TypeError):
            plan.spmv(np.ones(5), out=np.empty(8, dtype=np.float32))
        with pytest.raises(TypeError):
            plan.spmv(np.ones(5), out=[0.0] * 8)


class TestCSROutAliasing:
    def test_spmv_out_aliases_input(self, rng):
        mat = random_sparse(rng, 15, 15, density=0.3)
        x = rng.standard_normal(15)
        ref = mat.spmv(x.copy())
        buf = x.copy()
        mat.spmv(buf, out=buf)
        assert np.array_equal(buf, ref)

    def test_spmv_transpose_out_aliases_input(self, rng):
        mat = random_sparse(rng, 15, 15, density=0.3)
        x = rng.standard_normal(15)
        ref = mat.spmv_transpose(x.copy())
        buf = x.copy()
        mat.spmv_transpose(buf, out=buf)
        assert np.array_equal(buf, ref)

    def test_out_wrong_dtype_rejected(self, rng):
        mat = random_sparse(rng, 6, 6, density=0.4)
        with pytest.raises(TypeError):
            mat.spmv(np.ones(6), out=np.empty(6, dtype=np.float32))
        with pytest.raises(TypeError):
            mat.spmv_transpose(np.ones(6), out=np.empty(6, dtype=int))


class TestFromCooCanonical:
    def test_canonical_fast_path_matches_sort_path(self, rng):
        dense = rng.standard_normal((9, 7))
        dense[np.abs(dense) < 0.6] = 0.0
        rows, cols = np.nonzero(dense)
        vals = dense[rows, cols]
        a = CSRMatrix.from_coo(dense.shape, rows, cols, vals)
        b = CSRMatrix.from_coo(dense.shape, rows, cols, vals, canonical=True)
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.data, b.data)


@pytest.fixture
def dist_setup():
    mat = poisson2d(16)
    part = RowPartition.contiguous(mat.nrows, 4)
    dmat = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=3), part)
    return mat, part, dmat, b


class TestSolverWorkspace:
    def test_workspace_spmv_matches_legacy(self, dist_setup, rng):
        mat, part, dmat, _ = dist_setup
        ws = SolverWorkspace(dmat)
        x = DistVector.from_global(rng.standard_normal(mat.nrows), part)
        legacy = dmat.spmv(x)
        out = DistVector.zeros(part)
        ws.spmv(dmat, x, out=out)
        for p in range(part.nparts):
            # ELL-planned local blocks agree to rounding with the legacy
            # reduceat kernel (see repro.kernels.plan)
            assert np.allclose(out.parts[p], legacy.parts[p], atol=1e-13)

    def test_partition_mismatch_rejected(self, dist_setup):
        mat, part, dmat, _ = dist_setup
        ws = SolverWorkspace(dmat)
        other = RowPartition.contiguous(mat.nrows, 2)
        x = DistVector.zeros(other)
        with pytest.raises(ShapeError):
            ws.spmv(dmat, x)

    def test_float32_operand_rejected(self, dist_setup):
        _, part, dmat, _ = dist_setup
        ws = SolverWorkspace(dmat)
        x = DistVector.zeros(part)
        x.parts[0] = x.parts[0].astype(np.float32)
        with pytest.raises(ValueError, match="float64"):
            ws.spmv(dmat, x)

    def test_non_backend_operand_rejected(self, dist_setup):
        _, part, dmat, _ = dist_setup
        ws = SolverWorkspace(dmat)
        x = DistVector.zeros(part)
        x.parts[0] = list(x.parts[0])
        with pytest.raises(ValueError, match="backend"):
            ws.spmv(dmat, x)

    def test_float32_out_rejected(self, dist_setup, rng):
        mat, part, dmat, _ = dist_setup
        ws = SolverWorkspace(dmat)
        x = DistVector.from_global(rng.standard_normal(mat.nrows), part)
        out = DistVector.zeros(part)
        out.parts[1] = out.parts[1].astype(np.float32)
        with pytest.raises(ValueError, match="float64"):
            ws.spmv(dmat, x, out=out)

    def test_workspace_backend_defaults_to_numpy(self, dist_setup):
        _, _, dmat, _ = dist_setup
        ws = SolverWorkspace(dmat)
        assert ws.backend.name == "numpy"

    def test_halo_update_rejects_float32_buffers(self, dist_setup):
        mat, part, dmat, _ = dist_setup
        x_parts = [np.zeros(part.global_ids[p].size) for p in range(part.nparts)]
        bad = [
            np.zeros(dmat.schedule.halo_size(p), dtype=np.float32)
            for p in range(part.nparts)
        ]
        with pytest.raises(ValueError, match="float64"):
            dmat.schedule.update(x_parts, out=bad)

    def test_plan_cache_hits(self, dist_setup):
        _, _, dmat, b = dist_setup
        with tracing(NULL_TRACER) as (_, metrics):
            ws = SolverWorkspace(dmat)
            ws.spmv(dmat, b)
            ws.spmv(dmat, b)
            assert metrics.value("kernels.plan_cache.misses") == 1
            assert metrics.value("kernels.plan_cache.hits") >= 1

    def test_pcg_workspace_identical_to_legacy(self, dist_setup):
        mat, part, dmat, b = dist_setup
        pre = build_fsai(mat, part)
        legacy = pcg(dmat, b, precond=pre, workspace=False)
        ws = SolverWorkspace(dmat)
        fused = pcg(dmat, b, precond=pre, workspace=ws)
        # ELL plans sum rows in a different (documented) order than the
        # legacy reduceat kernel, so paths agree to rounding, not bitwise.
        assert abs(fused.iterations - legacy.iterations) <= 2
        assert fused.converged and legacy.converged
        for p in range(part.nparts):
            assert np.allclose(
                fused.x.parts[p], legacy.x.parts[p], rtol=1e-6, atol=1e-9
            )

    def test_pcg_zero_hot_allocations_after_warmup(self, dist_setup):
        mat, part, dmat, b = dist_setup
        pre = build_fsai(mat, part)
        ws = SolverWorkspace(dmat)
        pcg(dmat, b, precond=pre, workspace=ws)  # warm-up
        before = ws.allocations
        result = pcg(dmat, b, precond=pre, workspace=ws)
        assert result.converged
        assert ws.allocations == before

    def test_legacy_path_allocates_measurably_more(self, dist_setup):
        mat, part, dmat, b = dist_setup
        pre = build_fsai(mat, part)
        with tracing(NULL_TRACER) as (_, metrics):
            pcg(dmat, b, precond=pre, workspace=False)
            legacy_allocs = metrics.value("kernels.allocs")
        with tracing(NULL_TRACER) as (_, metrics):
            ws = SolverWorkspace(dmat)
            pcg(dmat, b, precond=pre, workspace=ws)
            pcg(dmat, b, precond=pre, workspace=ws)
            warm_allocs = metrics.value("kernels.allocs") or 0
        assert legacy_allocs is not None and legacy_allocs > 0
        # Two warm-capable solves still allocate less than half of one
        # legacy solve (warm solves allocate only the result vector).
        assert warm_allocs * 2 < legacy_allocs

    def test_result_vector_does_not_alias_workspace(self, dist_setup):
        mat, part, dmat, b = dist_setup
        pre = build_fsai(mat, part)
        ws = SolverWorkspace(dmat)
        first = pcg(dmat, b, precond=pre, workspace=ws)
        snapshot = [p.copy() for p in first.x.parts]
        pcg(dmat, b, precond=pre, workspace=ws)
        for p in range(part.nparts):
            assert np.array_equal(first.x.parts[p], snapshot[p])

    def test_bicgstab_workspace_identical_to_legacy(self, dist_setup):
        mat, part, dmat, b = dist_setup
        pre = build_fsai(mat, part)
        legacy = bicgstab(dmat, b, precond=pre, workspace=False)
        fused = bicgstab(dmat, b, precond=pre, workspace=SolverWorkspace(dmat))
        assert abs(fused.iterations - legacy.iterations) <= 2
        for p in range(part.nparts):
            assert np.allclose(
                fused.x.parts[p], legacy.x.parts[p], rtol=1e-6, atol=1e-9
            )

    def test_pipelined_pcg_workspace_identical_to_legacy(self, dist_setup):
        mat, part, dmat, b = dist_setup
        pre = build_fsai(mat, part)
        legacy = pipelined_pcg(dmat, b, precond=pre, workspace=False)
        fused = pipelined_pcg(
            dmat, b, precond=pre, workspace=SolverWorkspace(dmat)
        )
        assert abs(fused.iterations - legacy.iterations) <= 2
        for p in range(part.nparts):
            assert np.allclose(
                fused.x.parts[p], legacy.x.parts[p], rtol=1e-6, atol=1e-9
            )

    def test_supports_workspace_detection(self, dist_setup):
        mat, part, _, _ = dist_setup
        pre = build_fsai(mat, part)
        assert supports_workspace(pre.apply)
        assert not supports_workspace(lambda r, tracker: r)
        assert not supports_workspace(None)

    def test_legacy_callable_precond_still_works(self, dist_setup):
        mat, part, dmat, b = dist_setup
        pre = build_fsai(mat, part)

        def apply_m(r, tracker=None):
            return pre.apply(r, tracker)

        result = pcg(dmat, b, precond=apply_m)
        reference = pcg(dmat, b, precond=pre, workspace=False)
        assert result.converged
        assert abs(result.iterations - reference.iterations) <= 2


class TestDeprecatedParallelFSAI:
    """``parallel=`` is a deprecated no-op: warn, then run the batched path."""

    def test_parallel_warns_and_matches_default(self, poisson16):
        pattern = fsai_pattern(poisson16, FSAIOptions(level=2))
        serial = compute_g_values(poisson16, pattern)
        with pytest.deprecated_call():
            parallel = compute_g_values(poisson16, pattern, parallel=2)
        assert np.array_equal(serial.data, parallel.data)

    def test_parallel_worker_validation(self, poisson16):
        pattern = fsai_pattern(poisson16, FSAIOptions())
        with pytest.raises(ValueError):
            compute_g_values(poisson16, pattern, parallel=0)

    def test_parallel_none_is_silent(self, poisson16):
        pattern = fsai_pattern(poisson16, FSAIOptions())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            compute_g_values(poisson16, pattern, parallel=None)

    def test_fsai_factor_parallel_warns(self, poisson16):
        serial = fsai_factor(poisson16)
        with pytest.deprecated_call():
            parallel = fsai_factor(poisson16, parallel=2)
        assert np.array_equal(serial.data, parallel.data)

    def test_build_fsai_parallel_warns_and_solves(self, poisson16):
        part = RowPartition.contiguous(poisson16.nrows, 4)
        dmat = DistMatrix.from_global(poisson16, part)
        b = DistVector.from_global(paper_rhs(poisson16, seed=3), part)
        with pytest.deprecated_call():
            pre = build_fsai(poisson16, part, parallel=2)
        result = pcg(dmat, b, precond=pre)
        assert result.converged
