"""Streaming telemetry: histograms, sampling, in-band aggregation."""

from __future__ import annotations

import json

import pytest

from repro.dist import DistMatrix, DistVector, RowPartition
from repro.dist.spmd import spmd_pipelined_pcg
from repro.matgen import paper_rhs, poisson2d
from repro.mpisim import CommTracker, run_spmd
from repro.observe import (
    TELEMETRY_TAG,
    ClusterTelemetry,
    RankTelemetry,
    StreamingHistogram,
    TelemetryConfig,
    aggregate_telemetry,
    classify_wait_tag,
    sampled_ranks,
)


# ---------------------------------------------------------------------------
# StreamingHistogram
# ---------------------------------------------------------------------------
class TestStreamingHistogram:
    def test_bucket_bounds_are_powers_of_base(self):
        h = StreamingHistogram(lo=1.0, base=2.0)
        h.observe(3.0)  # (2, 4] -> bound 4
        h.observe(4.0)  # exactly on the bound stays in (2, 4]
        h.observe(5.0)  # (4, 8] -> bound 8
        assert h.buckets == {4.0: 2, 8.0: 1}
        assert h.count == 3
        assert h.sum == pytest.approx(12.0)

    def test_tiny_values_clamp_to_lowest_bucket(self):
        h = StreamingHistogram(lo=1e-9)
        h.observe(0.0)
        h.observe(1e-12)
        assert h.count == 2
        assert all(b <= 1e-9 for b in h.buckets)

    def test_merge_is_exact_on_shared_grid(self):
        a, b = StreamingHistogram(), StreamingHistogram()
        for v in (1e-6, 2e-6, 1e-3):
            a.observe(v)
        for v in (1e-6, 0.5):
            b.observe(v)
        a.merge(b)
        assert a.count == 5
        assert a.sum == pytest.approx(1e-6 + 2e-6 + 1e-3 + 1e-6 + 0.5)
        assert a.min == pytest.approx(1e-6)
        assert a.max == pytest.approx(0.5)

    def test_merge_rejects_different_grid(self):
        a = StreamingHistogram(base=2.0)
        b = StreamingHistogram(base=4.0)
        with pytest.raises(Exception):
            a.merge(b)

    def test_percentile_overestimates_within_one_bucket(self):
        h = StreamingHistogram(lo=1.0, base=2.0)
        for v in (1.5,) * 99 + (100.0,):
            h.observe(v)
        p50 = h.percentile(50)
        assert 1.5 <= p50 <= 2.0  # bucket upper bound
        assert h.percentile(100) >= 100.0 / 2  # within one bucket of the max

    def test_empty_histogram(self):
        h = StreamingHistogram()
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0

    def test_dict_round_trip(self):
        h = StreamingHistogram()
        for v in (1e-6, 3e-4, 0.25, 7.0):
            h.observe(v)
        clone = StreamingHistogram.from_dict(json.loads(json.dumps(h.to_dict())))
        assert clone.count == h.count
        assert clone.sum == pytest.approx(h.sum)
        assert clone.buckets == h.buckets

    def test_bounded_memory(self):
        h = StreamingHistogram()
        for i in range(100_000):
            h.observe(1e-9 * (1 + (i % 997)))
        # 100k observations spanning 3 decades fit in ~a dozen log buckets
        assert len(h.buckets) < 32


# ---------------------------------------------------------------------------
# sampling policies
# ---------------------------------------------------------------------------
class TestSampledRanks:
    def test_policies_are_deterministic_and_bounded(self):
        for policy, size, expect_len in (
            (4, 1024, 4),
            ("first:3", 1024, 3),
            ("sqrt", 1024, 32),
            ("all", 16, 16),
            (None, 1024, 0),
            ("none", 1024, 0),
            (0, 1024, 0),
        ):
            got = sampled_ranks(size, policy)
            assert got == sampled_ranks(size, policy)  # deterministic
            assert len(got) == expect_len
            assert all(0 <= r < size for r in got)

    def test_int_policy_spreads_over_the_range(self):
        got = sorted(sampled_ranks(1024, 4))
        assert got == [0, 256, 512, 768]

    def test_oversized_policy_clamps_to_size(self):
        assert sampled_ranks(4, 8) == frozenset({0, 1, 2, 3})

    def test_stride_policy(self):
        assert sorted(sampled_ranks(10, "stride:4")) == [0, 4, 8]

    def test_wait_tag_classification(self):
        assert classify_wait_tag(3) == "wait.halo"
        assert classify_wait_tag(1_000_001) == "wait.collective"
        assert classify_wait_tag(TELEMETRY_TAG) == "wait.collective"


# ---------------------------------------------------------------------------
# per-rank telemetry and cluster merge
# ---------------------------------------------------------------------------
def _rank(rank, wait, compute, *, sampled=False):
    t = RankTelemetry(rank, sampled=sampled)
    t.observe_wait(wait, tag=3)
    t.observe("compute", compute)
    t.observe_message(1024)
    return t


class TestClusterTelemetry:
    def test_span_recording_only_on_sampled_ranks(self):
        plain = _rank(0, 0.1, 0.2)
        probed = _rank(1, 0.1, 0.2, sampled=True)
        assert plain.spans == []
        assert len(probed.spans) == 2  # wait + compute

    def test_span_cap_counts_overflow(self):
        t = RankTelemetry(0, sampled=True, max_spans=4)
        for _ in range(10):
            t.observe("compute", 1e-3)
        assert len(t.spans) == 4
        assert t.spans_dropped == 6

    def test_merge_is_order_independent(self):
        def build(order):
            acc = ClusterTelemetry.from_rank(_rank(order[0], 0.1 * order[0], 0.2))
            for r in order[1:]:
                acc.merge(ClusterTelemetry.from_rank(_rank(r, 0.1 * r, 0.2)))
            return acc

        a = build([1, 2, 3, 4])
        b = build([4, 2, 1, 3])
        assert a.ranks == b.ranks == 4
        assert a.phase_seconds() == pytest.approx(b.phase_seconds())
        assert sorted(a.top_wait) == sorted(b.top_wait)
        assert a.counters == b.counters

    def test_straggler_detection_flags_outlier(self):
        acc = ClusterTelemetry.from_rank(_rank(0, 0.010, 0.1))
        for r in range(1, 16):
            acc.merge(ClusterTelemetry.from_rank(_rank(r, 0.010, 0.1)))
        acc.merge(ClusterTelemetry.from_rank(_rank(16, 5.0, 0.1)))
        stragglers = acc.straggler_ranks()
        assert [s["rank"] for s in stragglers] == [16]
        assert stragglers[0]["wait_seconds"] == pytest.approx(5.0)
        assert stragglers[0]["z"] > 3.5

    def test_no_stragglers_on_uniform_waits(self):
        acc = ClusterTelemetry.from_rank(_rank(0, 0.010, 0.1))
        for r in range(1, 32):
            acc.merge(ClusterTelemetry.from_rank(_rank(r, 0.010, 0.1)))
        assert acc.straggler_ranks() == []

    def test_payload_is_bounded_and_serialisable(self):
        acc = ClusterTelemetry.from_rank(_rank(0, 0.01, 0.1, sampled=True))
        for r in range(1, 512):
            acc.merge(ClusterTelemetry.from_rank(_rank(r, 0.01 + 1e-5 * r, 0.1)))
        small = ClusterTelemetry.from_rank(_rank(0, 0.01, 0.1, sampled=True))
        for r in range(1, 32):
            small.merge(ClusterTelemetry.from_rank(_rank(r, 0.01 + 1e-5 * r, 0.1)))
        # 16x the ranks must not cost anywhere near 16x the payload
        assert acc.payload_bytes() < 4 * small.payload_bytes()
        clone = ClusterTelemetry.from_dict(
            json.loads(json.dumps(acc.to_dict()))
        )
        assert clone.ranks == acc.ranks
        assert clone.phase_seconds() == pytest.approx(acc.phase_seconds())
        assert clone.top_wait == [tuple(t) for t in acc.top_wait]


# ---------------------------------------------------------------------------
# in-band aggregation over the simulator
# ---------------------------------------------------------------------------
class TestInBandAggregation:
    def test_binomial_tree_reaches_rank_zero(self):
        size = 13  # non-power-of-two exercises the partial tree
        cfg = TelemetryConfig(rank_sample=4)
        results = {}

        def fn(comm):
            t = cfg.make_rank(comm.rank, comm.size)
            t.observe_wait(0.001 * (comm.rank + 1), tag=5)
            t.observe("compute", 0.01)
            results[comm.rank] = aggregate_telemetry(comm, t)

        run_spmd(fn, size)
        assert all(results[r] is None for r in range(1, size))
        cluster = results[0]
        assert cluster.ranks == size
        assert cluster.hists["wait.halo"].count == size
        assert cluster.phase_seconds()["halo"] == pytest.approx(
            sum(0.001 * (r + 1) for r in range(size)), rel=1e-9
        )
        assert set(cluster.sampled) == set(sampled_ranks(size, 4))

    def test_telemetry_traffic_is_tagged_not_p2p(self):
        tracker = CommTracker()
        cfg = TelemetryConfig(rank_sample=2)

        def fn(comm):
            t = cfg.make_rank(comm.rank, comm.size)
            t.observe("compute", 0.01)
            aggregate_telemetry(comm, t)

        run_spmd(fn, 8, tracker=tracker)
        assert tracker.total_messages == 0  # nothing on the solver channel
        assert tracker.total_telemetry_messages == 7  # P-1 tree edges
        assert tracker.total_telemetry_bytes > 0
        snap = tracker.snapshot()
        assert snap["p2p_messages"] == {}
        assert snap["telemetry_messages"]

    def test_end_to_end_solver_telemetry(self):
        mat = poisson2d(12)
        part = RowPartition.from_matrix(mat, 4, seed=0)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, seed=0), part)
        cfg = TelemetryConfig(rank_sample=2)
        tracker = CommTracker()
        _, iterations = spmd_pipelined_pcg(
            da, b, rtol=1e-6, max_iterations=15, tracker=tracker,
            telemetry=cfg,
        )
        cluster = cfg.result
        assert cluster is not None and cluster.ranks == 4
        phases = cluster.phase_seconds()
        assert phases["compute"] > 0
        assert phases["reduction"] > 0
        assert cluster.hists["message_bytes"].count == tracker.total_messages
        assert cluster.counters["bytes"] == tracker.total_bytes
        assert len(cluster.sampled) == 2
        assert iterations > 0

    def test_telemetry_none_leaves_solver_untouched(self):
        mat = poisson2d(10)
        part = RowPartition.from_matrix(mat, 4, seed=0)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, seed=0), part)

        def solve(telemetry):
            tr = CommTracker()
            spmd_pipelined_pcg(da, b, rtol=1e-8, max_iterations=12,
                               tracker=tr, telemetry=telemetry)
            return tr

        bare = solve(None)
        probed = solve(TelemetryConfig(rank_sample=2))
        # identical solver traffic; telemetry rides its own accounting
        assert probed.total_messages == bare.total_messages
        assert probed.total_bytes == bare.total_bytes
        assert bare.total_telemetry_bytes == 0
        assert probed.total_telemetry_bytes > 0
