"""Unit tests for the SPAI baseline and the extra Krylov solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cg
from repro.core.spai import spai, spai_values
from repro.core.solvers import bicgstab, steepest_descent
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.errors import ShapeError
from repro.matgen import paper_rhs, poisson2d
from repro.sparse import CSRMatrix, SparsityPattern

from conftest import random_sparse


@pytest.fixture(scope="module")
def system():
    mat = poisson2d(14)
    part = RowPartition.from_matrix(mat, 3, seed=0)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, 4), part)
    return mat, part, da, b


class TestSPAI:
    def test_full_pattern_gives_exact_inverse(self, small_spd):
        n = small_spd.nrows
        full = SparsityPattern.from_rows((n, n), [list(range(n))] * n)
        m = spai_values(small_spd, full)
        assert np.allclose(m.to_dense() @ small_spd.to_dense(), np.eye(n), atol=1e-7)

    def test_reduces_frobenius_residual(self, system):
        mat, *_ = system
        n = mat.nrows
        m = spai(mat, level=1)
        am = (mat @ m).to_dense()
        eye = np.eye(n)
        # better than trivially scaled identity
        diag_scale = CSRMatrix.from_dense(np.diag(1.0 / mat.diagonal()))
        trivial = (mat @ diag_scale).to_dense()
        assert np.linalg.norm(am - eye) < np.linalg.norm(trivial - eye)

    def test_level2_better_than_level1(self, system):
        mat, *_ = system
        eye = np.eye(mat.nrows)
        r1 = np.linalg.norm((mat @ spai(mat, level=1)).to_dense() - eye)
        r2 = np.linalg.norm((mat @ spai(mat, level=2)).to_dense() - eye)
        assert r2 < r1

    def test_diagonal_matrix_exact(self):
        mat = CSRMatrix.from_dense(np.diag([2.0, 4.0, 8.0]))
        m = spai(mat, level=1)
        assert np.allclose(m.to_dense(), np.diag([0.5, 0.25, 0.125]))

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            spai_values(
                random_sparse(rng, 3, 5), SparsityPattern.empty((3, 5))
            )

    def test_pattern_shape_mismatch(self, small_spd):
        with pytest.raises(ShapeError):
            spai_values(small_spd, SparsityPattern.identity(small_spd.nrows + 1))


class TestBiCGSTAB:
    def test_solves_spd_system(self, system):
        mat, _, da, b = system
        res = bicgstab(da, b, rtol=1e-9)
        assert res.converged
        x = res.x.to_global()
        bg = b.to_global()
        assert np.linalg.norm(mat.spmv(x) - bg) <= 2e-9 * np.linalg.norm(bg)

    def test_spai_preconditioning_reduces_iterations(self, system):
        mat, part, da, b = system
        m = DistMatrix.from_global(spai(mat, level=1), part)

        def pre(v, tracker=None):
            return m.spmv(v, tracker)

        plain = bicgstab(da, b)
        pred = bicgstab(da, b, precond=pre)
        assert pred.converged
        assert pred.iterations < plain.iterations

    def test_zero_rhs(self, system):
        _, part, da, _ = system
        res = bicgstab(da, DistVector.zeros(part))
        assert res.converged and res.iterations == 0

    def test_iteration_cap_and_raise(self, system):
        from repro.errors import ConvergenceError

        _, _, da, b = system
        res = bicgstab(da, b, rtol=1e-15, max_iterations=1)
        assert not res.converged
        with pytest.raises(ConvergenceError):
            bicgstab(da, b, rtol=1e-15, max_iterations=1, raise_on_fail=True)

    def test_handles_nonsymmetric_system(self, rng):
        # a diagonally dominant nonsymmetric matrix — CG would be invalid
        n = 30
        dense = np.eye(n) * 10 + rng.standard_normal((n, n)) * 0.3
        mat = CSRMatrix.from_dense(dense)
        part = RowPartition.contiguous(n, 2)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(rng.standard_normal(n), part)
        res = bicgstab(da, b, rtol=1e-10)
        assert res.converged
        assert np.allclose(
            mat.spmv(res.x.to_global()), b.to_global(), atol=1e-7
        )


class TestSteepestDescent:
    def test_converges_slowly(self, system):
        mat, _, da, b = system
        sd = steepest_descent(da, b, rtol=1e-6, max_iterations=100_000)
        fast = cg(da, b, rtol=1e-6)
        assert sd.converged
        assert fast.iterations < sd.iterations / 3

    def test_breakdown_on_indefinite(self):
        dense = np.array([[1.0, 4.0], [4.0, 1.0]])
        mat = CSRMatrix.from_dense(dense)
        part = RowPartition.contiguous(2, 1)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(np.array([1.0, -1.0]), part)
        res = steepest_descent(da, b, max_iterations=100)
        assert not res.converged


class TestPipelinedCG:
    def test_matches_standard_pcg(self, system):
        from repro.core import build_fsai, pcg, pipelined_pcg

        mat, part, da, b = system
        pre = build_fsai(mat, part)
        std = pcg(da, b, precond=pre.apply, rtol=1e-10)
        pipe = pipelined_pcg(da, b, precond=pre.apply, rtol=1e-10)
        assert pipe.converged
        # identical recurrence in exact arithmetic: same iteration count
        # within rounding-induced slack of one step
        assert abs(pipe.iterations - std.iterations) <= 1
        assert np.allclose(pipe.x.to_global(), std.x.to_global(), atol=1e-8)

    def test_unpreconditioned(self, system):
        from repro.core import cg, pipelined_pcg

        mat, _, da, b = system
        std = cg(da, b, rtol=1e-9)
        pipe = pipelined_pcg(da, b, rtol=1e-9)
        assert pipe.converged
        assert abs(pipe.iterations - std.iterations) <= 1

    def test_fewer_reduction_phases(self, system):
        """The point of pipelining: fewer allreduce calls per iteration."""
        from repro.core import build_fsai, pcg, pipelined_pcg
        from repro.mpisim import CommTracker

        mat, part, da, b = system
        pre = build_fsai(mat, part)
        t_std, t_pipe = CommTracker(), CommTracker()
        std = pcg(da, b, precond=pre.apply, tracker=t_std)
        pipe = pipelined_pcg(da, b, precond=pre.apply, tracker=t_pipe)
        per_iter_std = t_std.collective_calls["allreduce"] / max(std.iterations, 1)
        per_iter_pipe = t_pipe.collective_calls["allreduce"] / max(pipe.iterations, 1)
        assert per_iter_pipe <= per_iter_std

    def test_zero_rhs(self, system):
        from repro.core import pipelined_pcg
        from repro.dist import DistVector

        _, part, da, _ = system
        res = pipelined_pcg(da, DistVector.zeros(part))
        assert res.converged and res.iterations == 0

    def test_with_fsaie_comm(self, system):
        from repro.core import build_fsaie_comm, pipelined_pcg

        mat, part, da, b = system
        pre = build_fsaie_comm(mat, part)
        res = pipelined_pcg(da, b, precond=pre.apply)
        assert res.converged
        bg = b.to_global()
        assert (
            np.linalg.norm(mat.spmv(res.x.to_global()) - bg)
            <= 2e-8 * np.linalg.norm(bg)
        )
