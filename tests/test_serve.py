"""Solve-farm serving layer: fingerprints, artifact cache, tenancy, farm.

The cheap unit tiers (fingerprint equality, LRU accounting, admission
verdicts, report round-trips) always run; the end-to-end farm solves carry
the ``serve_smoke`` marker — deselect with ``-m "not serve_smoke"`` for a
faster tier-1 run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import DistMatrix, RowPartition
from repro.instrument import disable_tracing, enable_tracing
from repro.matgen import poisson2d
from repro.observe import ReportError, RunReport
from repro.observe.audit import compare_snapshots, schedule_snapshot
from repro.resilience import FaultPlan, MessageDelay
from repro.serve import (
    AdmissionController,
    ArtifactCache,
    FarmConfig,
    ServeReport,
    ServeReportError,
    SolveFarm,
    SolveRequest,
    TenantPolicy,
    WorkspacePool,
    fingerprint_structure,
    values_digest,
)
from repro.sparse import CSRMatrix


def shifted(mat: CSRMatrix, delta: float) -> CSRMatrix:
    """Same structure, different values: shift the diagonal by ``delta``."""
    data = mat.data.copy()
    for row in range(mat.nrows):
        cols = mat.indices[mat.indptr[row]:mat.indptr[row + 1]]
        data[mat.indptr[row] + int(np.searchsorted(cols, row))] += delta
    return CSRMatrix(mat.shape, mat.indptr, mat.indices, data, check=False)


# ---------------------------------------------------------------- fingerprint


class TestFingerprint:
    def test_values_do_not_change_the_structure_fingerprint(self):
        mat = poisson2d(8)
        fp1 = fingerprint_structure(mat, ranks=4)
        fp2 = fingerprint_structure(shifted(mat, 0.5), ranks=4)
        assert fp1 == fp2
        assert fp1.key == fp2.key
        assert values_digest(mat) != values_digest(shifted(mat, 0.5))

    def test_structure_changes_the_fingerprint(self):
        fp1 = fingerprint_structure(poisson2d(8), ranks=4)
        fp2 = fingerprint_structure(poisson2d(9), ranks=4)
        assert fp1 != fp2
        assert fp1.digest != fp2.digest

    def test_options_change_the_fingerprint(self):
        mat = poisson2d(8)
        base = fingerprint_structure(mat, ranks=4)
        assert fingerprint_structure(mat, ranks=8) != base
        assert fingerprint_structure(mat, ranks=4, method="fsai") != base
        assert fingerprint_structure(mat, ranks=4, line_bytes=256) != base
        assert fingerprint_structure(mat, ranks=4, filter_value=0.1) != base
        assert fingerprint_structure(mat, ranks=4, dynamic=False) != base
        assert fingerprint_structure(mat, ranks=4, seed=7) != base

    def test_to_dict_surface(self):
        fp = fingerprint_structure(poisson2d(8), ranks=4)
        doc = fp.to_dict()
        assert doc["digest"] == fp.digest
        assert doc["shape"] == [64, 64]
        assert doc["ranks"] == 4
        assert doc["nnz"] == poisson2d(8).nnz


# ---------------------------------------------------------------------- cache


class TestArtifactCache:
    def test_hit_and_miss_accounting(self):
        cache = ArtifactCache(name="t1")
        assert cache.get("a") is None
        cache.put("a", "payload", 100)
        assert cache.get("a") == "payload"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.bytes == 100

    def test_lru_eviction_respects_max_bytes(self):
        cache = ArtifactCache(max_bytes=250, name="t2")
        cache.put("a", "A", 100)
        cache.put("b", "B", 100)
        assert cache.get("a") == "A"  # touch: "b" is now least recent
        cache.put("c", "C", 100)
        assert "b" not in cache
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
        assert cache.stats.evictions == 1
        assert cache.stats.evicted_bytes == 100
        assert cache.stats.bytes == 200

    def test_oversized_entry_survives_alone(self):
        # the just-inserted entry is never evicted, even above the bound:
        # a cache that cannot hold its working set still serves it once
        cache = ArtifactCache(max_bytes=50, name="t3")
        cache.put("big", "B", 500)
        assert cache.get("big") == "B"
        assert len(cache) == 1

    def test_zero_max_bytes_disables_the_cache(self):
        cache = ArtifactCache(max_bytes=0, name="t4")
        dropped = cache.put("a", "A", 10)
        assert cache.get("a") is None
        assert "a" not in cache
        assert len(cache) == 0
        assert dropped  # the dropped payload is reported as an eviction
        assert cache.stats.evictions == 1

    def test_metrics_mirrored_to_registry(self):
        _, registry = enable_tracing()
        try:
            cache = ArtifactCache(name="mirrored")
            cache.get("nope")
            cache.put("a", "A", 64)
            cache.get("a")
            assert registry.value("serve.cache.hits", tier="mirrored") == 1
            assert registry.value("serve.cache.misses", tier="mirrored") == 1
            assert registry.value("serve.cache.bytes", tier="mirrored") == 64
        finally:
            disable_tracing()


class TestWorkspacePool:
    def test_acquire_reuses_released_workspaces(self):
        made = []

        def factory():
            made.append(object())
            return made[-1]

        pool = WorkspacePool(factory)
        w1 = pool.acquire()
        pool.release(w1)
        w2 = pool.acquire()
        assert w2 is w1
        assert pool.created == 1
        assert pool.idle == 0
        pool.release(w2)
        assert pool.idle == 1


# -------------------------------------------------------------------- tenancy


class TestAdmission:
    def make(self, **kw):
        return AdmissionController(
            [TenantPolicy("alpha", max_in_flight=2),
             TenantPolicy("beta", max_in_flight=1)],
            **kw,
        )

    def test_unknown_tenant_is_shed(self):
        ctrl = self.make()
        verdict = ctrl.admit("mallory")
        assert not verdict.admitted
        assert verdict.reason == "unknown-tenant"

    def test_tenant_budget_is_enforced(self):
        ctrl = self.make()
        assert ctrl.admit("beta").admitted
        verdict = ctrl.admit("beta")
        assert not verdict.admitted
        assert verdict.reason == "tenant-budget"
        ctrl.release("beta")
        assert ctrl.admit("beta").admitted

    def test_queue_limit_sheds_before_tenant_budget(self):
        ctrl = self.make(queue_limit=1)
        assert ctrl.admit("alpha").admitted
        verdict = ctrl.admit("beta")
        assert not verdict.admitted
        assert verdict.reason == "queue-full"

    def test_unmatched_release_raises(self):
        ctrl = self.make()
        with pytest.raises(Exception):
            ctrl.release("alpha")

    def test_latency_histogram_percentiles(self):
        ctrl = self.make()
        for ms in (1, 2, 3, 4, 100):
            ctrl.admit("alpha")
            ctrl.release("alpha")
            ctrl.observe_latency("alpha", ms * 1e-3)
        doc = ctrl.stats("alpha").to_dict()
        lat = doc["latency"]
        assert lat["count"] == 5
        assert lat["p50_s"] == pytest.approx(3e-3, rel=0.2)
        assert lat["p99_s"] == pytest.approx(100e-3, rel=0.2)

    def test_shed_fraction(self):
        ctrl = self.make()
        ctrl.admit("beta")
        ctrl.admit("beta")  # shed: budget
        assert ctrl.shed_fraction == pytest.approx(0.5)
        assert ctrl.to_dict()["shed"] == 1


# ----------------------------------------------------------------------- farm


def small_config(**kw) -> FarmConfig:
    defaults = dict(ranks=4, method="comm", workers=4, queue_limit=64)
    defaults.update(kw)
    return FarmConfig(**defaults)


def two_tenants():
    return [TenantPolicy("alpha", max_in_flight=32),
            TenantPolicy("beta", max_in_flight=32)]


@pytest.mark.serve_smoke
class TestSolveFarm:
    def test_same_structure_different_values_hits_structure_tier(self):
        mat = poisson2d(12)
        with SolveFarm(two_tenants(), small_config()) as farm:
            first = farm.serve([SolveRequest("alpha", mat)])[0]
            again = farm.serve([SolveRequest("beta", mat)])[0]
            other_values = farm.serve(
                [SolveRequest("alpha", shifted(mat, 0.25))]
            )[0]
        # the structure build seeds the system tier with the operator it
        # just distributed, so even the first request gets a system hit
        assert first.ok and not first.structure_hit and first.system_hit
        assert again.ok and again.structure_hit and again.system_hit
        assert other_values.ok
        assert other_values.structure_hit
        assert not other_values.system_hit
        # the §4 invariance audit ran on the warm-structure build and the
        # cached halo schedule was byte-identical to a fresh one
        assert other_values.schedule_invariant is True
        assert farm.audit_violations == 0
        assert first.fingerprint == other_values.fingerprint

    def test_cached_schedule_is_bit_identical_to_fresh_build(self):
        mat = poisson2d(12)
        config = small_config()
        with SolveFarm(two_tenants(), config) as farm:
            farm.serve([SolveRequest("alpha", mat)])
            fp = fingerprint_structure(
                mat,
                ranks=config.ranks,
                method=config.method,
                line_bytes=config.line_bytes,
                filter_value=config.filter_value,
                dynamic=config.dynamic_filter,
                seed=config.partition_seed,
            )
            setup = farm.structures.get(fp)
        assert setup is not None
        part = RowPartition.from_matrix(mat, config.ranks,
                                        seed=config.partition_seed)
        fresh = DistMatrix.from_global(shifted(mat, 0.25), part)
        verdict = compare_snapshots(
            setup.schedule_snapshot, schedule_snapshot(fresh.schedule)
        )
        assert verdict.invariant, verdict.render()

    def test_different_structure_misses(self):
        with SolveFarm(two_tenants(), small_config()) as farm:
            a = farm.serve([SolveRequest("alpha", poisson2d(12))])[0]
            b = farm.serve([SolveRequest("alpha", poisson2d(13))])[0]
        assert a.fingerprint != b.fingerprint
        assert not b.structure_hit

    def test_concurrent_identical_requests_agree_exactly(self):
        mat = poisson2d(12)
        with SolveFarm(two_tenants(), small_config(workers=8)) as farm:
            farm.serve([SolveRequest("alpha", mat)])  # warm
            outcomes = farm.serve(
                [SolveRequest("alpha" if i % 2 else "beta", mat)
                 for i in range(12)]
            )
        iters = {o.iterations for o in outcomes}
        assert all(o.ok for o in outcomes)
        assert len(iters) == 1  # deterministic under concurrency

    def test_tenant_budget_sheds_deterministically(self):
        # all submits admit before any worker releases, so a budget of 1
        # sheds exactly the excess requests
        mat = poisson2d(12)
        tenants = [TenantPolicy("solo", max_in_flight=1)]
        with SolveFarm(tenants, small_config(workers=2)) as farm:
            outcomes = farm.serve([SolveRequest("solo", mat)
                                   for _ in range(3)])
        shed = [o for o in outcomes if not o.admitted]
        assert len(shed) == 2
        assert all(o.shed_reason == "tenant-budget" for o in shed)
        assert farm.admission.shed_fraction == pytest.approx(2 / 3)

    def test_chaos_tenant_records_injected_faults(self):
        mat = poisson2d(10)
        plan = FaultPlan(seed=0, delays=(MessageDelay(0.5, 0.001),))
        tenants = [TenantPolicy("alpha", max_in_flight=8),
                   TenantPolicy("chaos", max_in_flight=8, fault_plan=plan)]
        with SolveFarm(tenants, small_config(workers=2)) as farm:
            outcomes = farm.serve([
                SolveRequest("alpha", mat),
                SolveRequest("chaos", mat, engine="spmd"),
            ])
        clean = next(o for o in outcomes if o.tenant == "alpha")
        chaotic = next(o for o in outcomes if o.tenant == "chaos")
        assert clean.ok and chaotic.ok
        assert not clean.injected
        assert chaotic.injected and chaotic.injected.get("delays", 0) > 0

    def test_eviction_under_byte_pressure(self):
        # a cache too small for two structures keeps only the latest
        with SolveFarm(
            two_tenants(), small_config(cache_max_bytes=1)
        ) as farm:
            farm.serve([SolveRequest("alpha", poisson2d(12))])
            farm.serve([SolveRequest("alpha", poisson2d(13))])
            assert len(farm.structures) == 1
            assert farm.structures.stats.evictions >= 1


# --------------------------------------------------------------------- report


@pytest.mark.serve_smoke
class TestServeReport:
    def run_farm(self, tmp_path):
        mat = poisson2d(12)
        with SolveFarm(two_tenants(), small_config()) as farm:
            outcomes = farm.serve([
                SolveRequest("alpha", mat),
                SolveRequest("beta", shifted(mat, 0.1)),
            ])
            report = ServeReport.from_farm(farm, outcomes=outcomes,
                                           matrix="poisson2d:12")
        return report

    def test_round_trip_and_metrics(self, tmp_path):
        report = self.run_farm(tmp_path)
        path = report.save(tmp_path / "serve.json")
        loaded = ServeReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        m = report.metrics()
        assert m["serve.admitted"] == 2
        assert m["serve.cache.structure.hits"] == 1
        assert "serve.tenant.alpha.latency.p95_s" in m
        assert "alpha" in report.render()

    def test_runreport_load_dispatches_serve_report(self, tmp_path):
        path = self.run_farm(tmp_path).save(tmp_path / "serve.json")
        run = RunReport.load(path)
        assert run.meta["source"] == "serve-report"
        assert run.metrics["serve.admitted"] == 2.0
        assert "serve" in run.sections

    def test_load_rejects_missing_and_binary(self, tmp_path):
        with pytest.raises(ServeReportError):
            ServeReport.load(tmp_path / "nope.json")
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"\x00\x01\xff\xfe")
        with pytest.raises(ServeReportError):
            ServeReport.load(bad)
        with pytest.raises(ReportError):
            RunReport.load(bad)

    def test_from_dict_rejects_wrong_format(self):
        with pytest.raises(ServeReportError):
            ServeReport.from_dict({"format": "other", "version": 1})
        with pytest.raises(ServeReportError):
            ServeReport.from_dict(
                {"format": "repro-serve-report", "version": 99}
            )
