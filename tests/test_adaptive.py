"""Unit tests for the adaptive-pattern FSPAI comparator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FSPAIOptions,
    build_fsai,
    fspai_factor,
    fspai_pattern,
    pcg,
)
from repro.core.precond import _distribute
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.errors import ShapeError
from repro.matgen import paper_rhs, poisson2d
from repro.sparse import CSRMatrix

from conftest import random_sparse


class TestPatternGrowth:
    def test_zero_steps_gives_diagonal(self, small_spd):
        pat = fspai_pattern(small_spd, FSPAIOptions(max_steps=0))
        assert pat.nnz == small_spd.nrows
        for i in range(small_spd.nrows):
            assert pat.row(i).tolist() == [i]

    def test_pattern_is_lower_triangular_with_diagonal(self, small_spd):
        pat = fspai_pattern(small_spd, FSPAIOptions(max_steps=3))
        for i in range(pat.nrows):
            row = pat.row(i)
            assert row[-1] == i
            assert np.all(row <= i)

    def test_more_steps_grow_monotonically(self, poisson16):
        sizes = [
            fspai_pattern(poisson16, FSPAIOptions(max_steps=k)).nnz
            for k in (0, 1, 2, 4)
        ]
        assert sizes == sorted(sizes)

    def test_tol_one_keeps_only_peak_candidates(self, poisson16):
        loose = fspai_pattern(poisson16, FSPAIOptions(max_steps=2, tol=0.0))
        strict = fspai_pattern(poisson16, FSPAIOptions(max_steps=2, tol=1.0))
        assert strict.nnz <= loose.nnz

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            fspai_pattern(random_sparse(rng, 4, 6))

    def test_options_validation(self):
        with pytest.raises(ValueError):
            FSPAIOptions(per_step=0)
        with pytest.raises(ValueError):
            FSPAIOptions(tol=1.5)


class TestFactorQuality:
    def test_unit_diagonal_of_gagt(self, small_spd):
        g = fspai_factor(small_spd)
        m = g.to_dense() @ small_spd.to_dense() @ g.to_dense().T
        assert np.allclose(np.diag(m), 1.0, atol=1e-8)

    def test_beats_static_fsai_iterations(self):
        """The related-work claim: dynamic patterns are more powerful."""
        mat = poisson2d(18)
        part = RowPartition.from_matrix(mat, 3, seed=0)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, 2), part)
        fsai = build_fsai(mat, part)
        g = fspai_factor(mat, FSPAIOptions(max_steps=4, per_step=2))
        fspai = _distribute("FSPAI", g, part, base_nnz=fsai.nnz, filters=np.zeros(3))
        r_static = pcg(da, b, precond=fsai.apply)
        r_dynamic = pcg(da, b, precond=fspai.apply)
        assert r_dynamic.converged
        assert r_dynamic.iterations < r_static.iterations

    def test_but_grows_communication(self):
        """...and the paper's counterpoint: it ignores the halo structure."""
        mat = poisson2d(18)
        part = RowPartition.from_matrix(mat, 4, seed=1)
        fsai = build_fsai(mat, part)
        g = fspai_factor(mat, FSPAIOptions(max_steps=4, per_step=2))
        fspai = _distribute("FSPAI", g, part, base_nnz=fsai.nnz, filters=np.zeros(4))
        assert (
            fspai.g.schedule.total_halo_values()
            > fsai.g.schedule.total_halo_values()
        )

    def test_diagonal_matrix(self):
        mat = CSRMatrix.from_dense(np.diag([4.0, 9.0]))
        g = fspai_factor(mat)
        assert np.allclose(g.to_dense(), np.diag([0.5, 1.0 / 3.0]))
