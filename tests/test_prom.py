"""Tests for the OpenMetrics exposition renderer (:mod:`repro.observe.prom`).

Round-trips go through :func:`parse_exposition` — the renderer's own small
reader — so escaping, counter ``_total`` suffixing and label ordering are
checked end to end against real :class:`MetricsRegistry` output.
"""

from __future__ import annotations

import pytest

from repro.instrument import MetricsRegistry
from repro.observe import (
    ClusterTelemetry,
    RankTelemetry,
    StreamingHistogram,
    Timeline,
    escape_label_value,
    parse_exposition,
    render_openmetrics,
    sanitize_metric_name,
    timeline_samples,
    write_openmetrics,
)
from tests.test_timeline import two_rank_spans


class TestNames:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("halo.bytes_sent") == "repro_halo_bytes_sent"
        assert sanitize_metric_name("a-b c", namespace="") == "a_b_c"
        assert sanitize_metric_name("9lives", namespace="") == "_9lives"

    def test_escape_label_value(self):
        assert escape_label_value('sla\\sh "q"\nnl') == 'sla\\\\sh \\"q\\"\\nnl'


class TestRender:
    def test_counters_get_total_suffix_and_type(self):
        reg = MetricsRegistry()
        reg.counter("halo.bytes_sent", rank=0).inc(128)
        text = render_openmetrics(reg)
        assert "# TYPE repro_halo_bytes_sent_total counter" in text
        assert 'repro_halo_bytes_sent_total{rank="0"} 128.0' in text
        assert text.rstrip().endswith("# EOF")

    def test_counter_totals_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("pcg.iterations").inc(42)
        reg.counter("halo.msgs", rank=1).inc(7)
        reg.counter("halo.msgs", rank=2).inc(9)
        parsed = parse_exposition(render_openmetrics(reg))
        assert parsed["repro_pcg_iterations_total"][()] == 42.0
        msgs = parsed["repro_halo_msgs_total"]
        assert msgs[(("rank", "1"),)] == 7.0
        assert msgs[(("rank", "2"),)] == 9.0
        assert sum(msgs.values()) == 16.0

    def test_label_values_escape_and_roundtrip(self):
        awkward = 'pat"tern\\with\nnewline'
        samples = [
            {"kind": "gauge", "name": "x", "tags": {"case": awkward}, "value": 1.0}
        ]
        text = render_openmetrics(samples)
        parsed = parse_exposition(text)
        assert parsed["repro_x"][(("case", awkward),)] == 1.0

    def test_histograms_become_count_sum_min_max(self):
        reg = MetricsRegistry()
        hist = reg.histogram("solve.seconds")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        parsed = parse_exposition(render_openmetrics(reg))
        assert parsed["repro_solve_seconds_count"][()] == 3.0
        assert parsed["repro_solve_seconds_sum"][()] == 6.0
        assert parsed["repro_solve_seconds_min"][()] == 1.0
        assert parsed["repro_solve_seconds_max"][()] == 3.0

    def test_write_openmetrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(1)
        path = write_openmetrics(tmp_path / "m.prom", reg)
        assert path.read_text().endswith("# EOF\n")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="unparseable"):
            parse_exposition("!!! not exposition")


class TestTimelineSamples:
    def test_timeline_aggregates_render(self):
        tl = Timeline.from_spans(two_rank_spans())
        parsed = parse_exposition(render_openmetrics(timeline_samples(tl)))
        assert parsed["repro_timeline_makespan_seconds"][()] == pytest.approx(4.0)
        busy = parsed["repro_timeline_busy_seconds"]
        assert busy[(("rank", "0"),)] == pytest.approx(3.0)
        assert busy[(("rank", "1"),)] == pytest.approx(4.0)
        phase = parsed["repro_timeline_phase_seconds_total"]
        assert phase[(("phase", "wait"),)] == pytest.approx(2.5)
        # phase counters partition total busy time
        assert sum(phase.values()) == pytest.approx(7.0)
        assert parsed["repro_timeline_critical_path_seconds"][()] == pytest.approx(4.0)

    def test_registry_and_timeline_concatenate(self):
        reg = MetricsRegistry()
        reg.counter("pcg.iterations").inc(5)
        tl = Timeline.from_spans(two_rank_spans())
        parsed = parse_exposition(
            render_openmetrics(reg.collect() + timeline_samples(tl))
        )
        assert "repro_pcg_iterations_total" in parsed
        assert "repro_timeline_makespan_seconds" in parsed


class TestBucketedHistogramRoundTrip:
    """Export -> parse -> re-export must be byte-identical for histogram
    families (the streamed-telemetry artifact CI diffs as text)."""

    def _hist(self):
        h = StreamingHistogram()
        for v in (1.5e-6, 1.5e-6, 3e-6, 2.5e-4, 0.125, 0.125, 0.125, 7.0):
            h.observe(v)
        return h

    def test_bucket_family_renders_cumulative_with_inf(self):
        text = render_openmetrics(self._hist().to_samples("wait.halo"))
        parsed = parse_exposition(text)
        buckets = parsed["repro_wait_halo_bucket"]
        les = [dict(k)["le"] for k in buckets]
        assert "+Inf" in les
        finite = sorted(float(le) for le in les if le != "+Inf")
        counts = [buckets[(("le", repr(le)),)] for le in finite]
        assert counts == sorted(counts)  # cumulative
        assert buckets[(("le", "+Inf"),)] == 8.0
        assert parsed["repro_wait_halo_count"][()] == 8.0
        # exactly one TYPE line for the whole family
        assert text.count("# TYPE repro_wait_halo histogram") == 1
        assert "# TYPE repro_wait_halo_bucket" not in text

    def test_round_trip_is_byte_identical(self):
        h = self._hist()
        first = render_openmetrics(h.to_samples("wait.halo"))
        clone = StreamingHistogram.from_exposition(
            parse_exposition(first), "repro_wait_halo"
        )
        second = render_openmetrics(clone.to_samples("wait.halo"))
        assert second == first
        assert clone.buckets == h.buckets
        assert clone.count == h.count and clone.sum == h.sum

    def test_round_trip_with_labels(self):
        h = self._hist()
        first = render_openmetrics(h.to_samples("wait.halo", tags={"rank": 3}))
        clone = StreamingHistogram.from_exposition(
            parse_exposition(first), "repro_wait_halo",
            labels=(("rank", "3"),),
        )
        second = render_openmetrics(clone.to_samples("wait.halo",
                                                     tags={"rank": 3}))
        assert second == first

    def test_cluster_telemetry_exposition_parses(self):
        t = RankTelemetry(0)
        t.observe_wait(0.002, tag=3)
        t.observe("compute", 0.01)
        t.observe_message(4096)
        cluster = ClusterTelemetry.from_rank(t)
        parsed = parse_exposition(render_openmetrics(cluster.to_prom_samples()))
        assert parsed["repro_telemetry_ranks"][()] == 1.0
        assert parsed["repro_telemetry_messages_total"][()] == 1.0
        assert "repro_telemetry_wait_halo_bucket" in parsed
        assert "repro_telemetry_rank_wait_seconds_bucket" in parsed

    def test_unbucketed_histograms_keep_summary_form(self):
        reg = MetricsRegistry()
        reg.histogram("solve.seconds").observe(1.0)
        text = render_openmetrics(reg)
        assert "# TYPE repro_solve_seconds summary" in text
        assert "_bucket" not in text
