"""Unit tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, load_matrix, main
from repro.sparse import write_matrix_market

from conftest import build_poisson2d


class TestLoadMatrix:
    def parse(self, *argv):
        return build_parser().parse_args(list(argv))

    def test_generate_poisson(self):
        args = self.parse("info", "--generate", "poisson2d:6")
        assert load_matrix(args).nrows == 36

    def test_generate_elasticity(self):
        args = self.parse("info", "--generate", "elasticity3d:2,2,2")
        assert load_matrix(args).nrows == 3 * 27

    def test_generate_catalog(self):
        args = self.parse("info", "--generate", "catalog:gyro")
        assert load_matrix(args).nrows > 0

    def test_generate_catalog_large(self):
        args = self.parse("info", "--generate", "catalog-large:ldoor")
        assert load_matrix(args).nrows > 0

    def test_matrix_file(self, tmp_path):
        mat = build_poisson2d(5)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, mat, symmetric=True)
        args = self.parse("info", "--matrix", str(path))
        assert load_matrix(args).allclose(mat)

    def test_unknown_generator_fails(self):
        from repro.errors import ReproError

        args = self.parse("info", "--generate", "banana:3")
        with pytest.raises(ReproError):
            load_matrix(args)


class TestCommands:
    def test_solve_exit_zero(self, capsys):
        code = main(["solve", "--generate", "poisson2d:10", "--ranks", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "converged=True" in out
        assert "modeled time" in out

    def test_solve_each_method(self, capsys):
        for method in ("fsai", "fsaie", "comm"):
            code = main(
                ["solve", "--generate", "poisson2d:8", "--ranks", "2", "--method", method]
            )
            assert code == 0

    def test_compare_prints_table_and_invariance(self, capsys):
        code = main(["compare", "--generate", "poisson2d:10", "--ranks", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "FSAIE-Comm" in out
        assert "communication scheme unchanged by FSAIE-Comm: True" in out

    def test_info(self, capsys):
        code = main(["info", "--generate", "poisson2d:6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "symmetric   : True" in out

    def test_missing_source_is_error(self, capsys):
        code = main(["info"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_static_filter_flag(self, capsys):
        code = main(
            ["solve", "--generate", "poisson2d:8", "--ranks", "2", "--static",
             "--filter", "0.1"]
        )
        assert code == 0

    def test_machine_selection(self, capsys):
        code = main(
            ["compare", "--generate", "poisson2d:8", "--ranks", "2",
             "--machine", "a64fx"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "a64fx" in out


class TestExport:
    def test_export_named_subset(self, tmp_path, capsys):
        code = main(["export", "--output", str(tmp_path), "--names", "gyro"])
        assert code == 0
        assert (tmp_path / "gyro.mtx").exists()
        from repro.sparse import read_matrix_market

        mat = read_matrix_market(tmp_path / "gyro.mtx")
        assert mat.nrows == 700

    def test_export_unknown_name(self, tmp_path, capsys):
        code = main(["export", "--output", str(tmp_path), "--names", "nope"])
        assert code == 2
        assert "unknown matrices" in capsys.readouterr().err

    def test_exported_file_solves(self, tmp_path, capsys):
        main(["export", "--output", str(tmp_path), "--names", "qa8fm"])
        code = main(
            ["solve", "--matrix", str(tmp_path / "qa8fm.mtx"), "--ranks", "2"]
        )
        assert code == 0


class TestTrace:
    def test_chrome_trace_written(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "--workload", "poisson2d:10", "--nparts", "4",
             "--output", str(out)]
        )
        assert code == 0
        report = capsys.readouterr().out
        assert "iteration spans" in report

        import json

        doc = json.loads(out.read_text())
        names = {e.get("name") for e in doc["traceEvents"]}
        for phase in ("precond.pattern", "precond.extension",
                      "precond.filtering", "precond.factor",
                      "pcg.iteration", "halo.exchange"):
            assert phase in names

    def test_trace_halo_bytes_match_tracker(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        code = main(
            ["trace", "--workload", "poisson2d:10", "--nparts", "4",
             "--format", "json", "--output", str(out)]
        )
        assert code == 0
        report = capsys.readouterr().out

        from repro.instrument import read_json_trace

        doc = read_json_trace(out)
        halo = sum(
            s["tags"]["bytes"] for s in doc["spans"] if s["name"] == "halo.exchange"
        )
        assert f"(tracker: {halo} bytes)" in report


class TestReport:
    def _write_report(self, tmp_path, name="run.json", **metrics):
        from repro.observe import RunReport

        report = RunReport(meta={"label": name.rsplit(".", 1)[0]})
        for key, value in (metrics or {"pcg.iterations": 42.0}).items():
            report.add_metric(key, value)
        return report.save(tmp_path / name)

    def test_render_text(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        assert main(["report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "run report: run" in out
        assert "pcg.iterations" in out

    def test_render_markdown(self, tmp_path, capsys):
        path = self._write_report(tmp_path)
        assert main(["report", str(path), "--format", "markdown"]) == 0
        assert "# Run report — run" in capsys.readouterr().out

    def test_missing_file_is_clear_error(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_malformed_json_is_clear_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{definitely not json")
        assert main(["report", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "not valid JSON" in err
        assert "Traceback" not in err

    def test_future_schema_version_is_clear_error(self, tmp_path, capsys):
        import json as _json

        path = tmp_path / "future.json"
        path.write_text(
            _json.dumps({"format": "repro-run-report", "version": 99, "meta": {}})
        )
        assert main(["report", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "version 99" in err

    def test_compare_pass_and_fail_exit_codes(self, tmp_path, capsys):
        base = self._write_report(tmp_path, "base.json", **{"pcg.iterations": 40.0})
        same = self._write_report(tmp_path, "same.json", **{"pcg.iterations": 40.0})
        worse = self._write_report(tmp_path, "worse.json", **{"pcg.iterations": 80.0})
        assert main(["report", str(base), "--compare", str(same)]) == 0
        assert "PASS" in capsys.readouterr().out
        assert main(["report", str(base), "--compare", str(worse)]) == 1
        assert "FAIL" in capsys.readouterr().out
        # a generous tolerance turns the failure into a pass
        assert main(
            ["report", str(base), "--compare", str(worse),
             "--tol", "pcg.iterations=1.5"]
        ) == 0

    def test_compare_bad_tolerance_spec(self, tmp_path, capsys):
        base = self._write_report(tmp_path, "base.json")
        other = self._write_report(tmp_path, "other.json")
        for spec in ("pcg.iterations", "=0.5", "pcg.iterations=abc"):
            assert main(
                ["report", str(base), "--compare", str(other), "--tol", spec]
            ) == 2
            assert "NAME=RELATIVE_TOLERANCE" in capsys.readouterr().err

    def test_compare_missing_file_is_clear_error(self, tmp_path, capsys):
        base = self._write_report(tmp_path)
        assert main(
            ["report", str(base), "--compare", str(tmp_path / "absent.json")]
        ) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_compare_unreadable_file_is_clear_error(self, tmp_path, capsys):
        base = self._write_report(tmp_path)
        binary = tmp_path / "binary.json"
        binary.write_bytes(b"\x80\x81\xfe\xff not utf-8")
        assert main(["report", str(base), "--compare", str(binary)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestTimeline:
    def test_timeline_prints_gantt_and_critical_path(self, capsys):
        code = main(
            ["timeline", "--generate", "poisson2d:8", "--ranks", "2",
             "--method", "fsai"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "static halo critical path" in out
        assert "legend: C compute" in out
        assert "critical path" in out

    def test_timeline_json_and_prom_outputs(self, tmp_path, capsys):
        tl_path = tmp_path / "t.json"
        prom_path = tmp_path / "t.prom"
        code = main(
            ["timeline", "--generate", "poisson2d:8", "--ranks", "2",
             "--json", str(tl_path), "--prom", str(prom_path)]
        )
        assert code == 0
        from repro.observe import Timeline

        tl = Timeline.load(tl_path)
        assert tl.ranks == [0, 1]
        text = prom_path.read_text()
        assert "repro_timeline_makespan_seconds" in text
        assert text.endswith("# EOF\n")

    def test_timeline_load_renders_saved_document(self, tmp_path, capsys):
        tl_path = tmp_path / "t.json"
        assert main(
            ["timeline", "--generate", "poisson2d:8", "--ranks", "2",
             "--json", str(tl_path)]
        ) == 0
        capsys.readouterr()
        assert main(["timeline", "--load", str(tl_path)]) == 0
        out = capsys.readouterr().out
        assert "legend: C compute" in out

    def test_timeline_load_missing_file_is_clear_error(self, tmp_path, capsys):
        assert main(["timeline", "--load", str(tmp_path / "absent.json")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err


class TestExplain:
    def test_explain_prints_verdict(self, capsys):
        code = main(["explain", "--generate", "poisson2d:12", "--ranks", "4",
                     "--seed", "7"])
        out = capsys.readouterr().out
        assert code == 0
        assert "attribution verdict" in out
        assert "FSAIE-Comm" in out
        assert "comm invariant    : True" in out

    def test_explain_json_roundtrips(self, tmp_path, capsys):
        path = tmp_path / "verdict.json"
        code = main(["explain", "--generate", "poisson2d:8", "--ranks", "2",
                     "--json", str(path)])
        assert code == 0
        from repro.observe import AttributionVerdict

        verdict = AttributionVerdict.load(path)
        assert {f.method for f in verdict.facts} == {"FSAI", "FSAIE", "FSAIE-Comm"}
