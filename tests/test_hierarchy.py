"""Unit tests for the two-level cache hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachesim import (
    CacheConfig,
    CacheHierarchy,
    HierarchyResult,
    L1_SKYLAKE,
    L2_SKYLAKE,
    simulate_misses,
)


def small_hierarchy():
    return CacheHierarchy(CacheConfig(512, 64, 2), CacheConfig(4096, 64, 4))


class TestConstruction:
    def test_line_size_must_match(self):
        with pytest.raises(ValueError):
            CacheHierarchy(CacheConfig(512, 64, 2), CacheConfig(4096, 256, 4))

    def test_l2_must_be_larger(self):
        with pytest.raises(ValueError):
            CacheHierarchy(CacheConfig(4096, 64, 4), CacheConfig(512, 64, 2))


class TestAccess:
    def test_levels_report_correctly(self):
        h = small_hierarchy()
        assert h.access(0) == "mem"  # cold
        assert h.access(0) == "l1"  # hot in L1
        # evict line 0 from tiny L1 by touching conflicting lines
        for lid in (4, 8, 12, 16, 20, 24):
            h.access(lid)
        assert h.access(0) == "l2"  # gone from L1, still in the larger L2

    def test_stream_result_invariants(self, rng):
        h = small_hierarchy()
        stream = rng.integers(0, 500, 5000)
        res = h.access_stream(stream)
        assert isinstance(res, HierarchyResult)
        assert res.accesses == 5000
        assert 0 <= res.l2_misses <= res.l1_misses <= res.accesses
        assert 0 <= res.l1_hit_rate <= 1
        assert 0 <= res.l2_hit_rate <= 1

    def test_l1_misses_match_single_level_simulator(self, rng):
        stream = rng.integers(0, 300, 3000)
        h = CacheHierarchy(CacheConfig(1024, 64, 2), CacheConfig(8192, 64, 4))
        res = h.access_stream(stream)
        assert res.l1_misses == simulate_misses(stream, CacheConfig(1024, 64, 2))

    def test_l2_misses_at_least_distinct_lines(self, rng):
        stream = rng.integers(0, 100, 2000)
        res = small_hierarchy().access_stream(stream)
        # compulsory misses reach memory exactly once per distinct line when
        # L2 holds the whole footprint
        assert res.l2_misses >= np.unique(stream).size * 0 + 1
        big = CacheHierarchy(CacheConfig(512, 64, 2), CacheConfig(64 * 1024, 64, 16))
        res2 = big.access_stream(stream)
        assert res2.l2_misses == np.unique(stream).size

    def test_empty_stream(self):
        res = small_hierarchy().access_stream(np.empty(0, dtype=np.int64))
        assert res == HierarchyResult(0, 0, 0)

    def test_machine_presets_consistent(self):
        h = CacheHierarchy(L1_SKYLAKE, L2_SKYLAKE)
        assert h.l1.config.line_bytes == h.l2.config.line_bytes == 64
