"""Unit tests for the workload generators and the evaluation catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.matgen import (
    PAPER_RTOL,
    anisotropic2d,
    anisotropic3d,
    banded_spd,
    circuit_laplacian,
    default_rank_count,
    electromagnetics_like,
    elasticity2d,
    elasticity3d,
    get_case,
    paper_rhs,
    poisson2d,
    poisson3d,
    shell_like,
    stretched_grid_2d,
    table1_cases,
    table2_cases,
    wide_stencil_3d,
)
from repro.sparse import CSRMatrix
from repro.sparse.ops import check_spd, is_symmetric, max_norm


def assert_spd(mat: CSRMatrix):
    assert is_symmetric(mat)
    check_spd(mat, probe_vectors=2)


class TestStencils:
    def test_poisson2d_structure(self):
        mat = poisson2d(4)
        assert mat.shape == (16, 16)
        assert mat.nnz == 16 + 2 * 2 * 4 * 3  # diag + 4 edge sets
        assert_spd(mat)

    def test_poisson2d_matches_kron_formula(self):
        n = 5
        mat = poisson2d(n).to_dense()
        t = 2 * np.eye(n) - np.eye(n, k=1) - np.eye(n, k=-1)
        expected = np.kron(t, np.eye(n)) + np.kron(np.eye(n), t)
        assert np.allclose(mat, expected)

    def test_poisson3d(self):
        mat = poisson3d(4)
        assert mat.shape == (64, 64)
        assert_spd(mat)
        assert mat.diagonal()[0] == 6.0

    def test_anisotropic_weights(self):
        mat = anisotropic2d(3, 3, 1.0, 0.01)
        dense = mat.to_dense()
        assert dense[0, 3] == -1.0  # x neighbour (stride ny=3)
        assert dense[0, 1] == -0.01  # y neighbour
        assert_spd(mat)

    def test_anisotropic3d(self):
        assert_spd(anisotropic3d(3, 4, 5, 1.0, 0.5, 0.1))

    def test_wide_stencil_density(self):
        r1 = wide_stencil_3d(6, 1)
        r2 = wide_stencil_3d(6, 2)
        assert r2.nnz > 2 * r1.nnz
        assert_spd(r2)

    def test_stretched_grid(self):
        mat = stretched_grid_2d(8, 8, stretch=50.0)
        assert_spd(mat)
        # strong spread of coupling scales is the point of this generator
        rows = np.repeat(np.arange(mat.nrows), mat.row_nnz())
        off = np.abs(mat.data[rows != mat.indices])
        assert off.max() / off.min() > 10.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            poisson2d(0)
        with pytest.raises(ValueError):
            anisotropic2d(3, 3, -1.0, 1.0)
        with pytest.raises(ValueError):
            wide_stencil_3d(4, 0)
        with pytest.raises(ValueError):
            stretched_grid_2d(1, 5)


class TestFEM:
    def test_elasticity2d_is_spd_with_clamped_edge(self):
        mat = elasticity2d(5, 4)
        assert mat.shape == (2 * 6 * 5, 2 * 6 * 5)
        assert_spd(mat)

    def test_elasticity3d_is_spd(self):
        mat = elasticity3d(3, 3, 2)
        assert mat.shape == (3 * 4 * 4 * 3, 3 * 4 * 4 * 3)
        assert_spd(mat)

    def test_elasticity3d_row_density(self):
        mat = elasticity3d(4, 4, 4)
        # interior nodes couple to 27 nodes x 3 dof = 81 entries
        assert mat.row_nnz().max() == 81

    def test_shell_like(self):
        mat = shell_like(6, 6)
        assert_spd(mat)
        # mixed scales from the thin-bending contribution
        ratios = np.abs(mat.data)
        assert ratios.max() / ratios[ratios > 0].min() > 10

    def test_element_stiffness_singularity(self):
        """An unpinned element stiffness has rigid-body null modes — the
        assembly must pin DOFs to restore definiteness."""
        from repro.matgen.fem import _q4_stiffness

        ke = _q4_stiffness(1.0, 0.3)
        w = np.linalg.eigvalsh(ke)
        assert np.sum(np.abs(w) < 1e-10) == 3  # 2 translations + 1 rotation
        assert np.all(w > -1e-10)

    def test_invalid_grids(self):
        with pytest.raises(ValueError):
            elasticity2d(0, 3)
        with pytest.raises(ValueError):
            elasticity3d(1, 1, 0)


class TestGraphGenerators:
    def test_circuit_laplacian_spd(self):
        assert_spd(circuit_laplacian(300, seed=1))

    def test_circuit_row_sums_almost_zero_without_ground(self):
        mat = circuit_laplacian(200, ground_fraction=0.0, seed=2)
        sums = mat.to_dense().sum(axis=1)
        assert np.all(sums >= 0)
        assert sums.max() <= 1e-5 + 1e-9  # only the tiny regularisation

    def test_electromagnetics_like_spd(self):
        assert_spd(electromagnetics_like(5, seed=3))

    def test_banded_spd(self):
        mat = banded_spd(150, 8, seed=4)
        assert_spd(mat)
        rows = np.repeat(np.arange(150), mat.row_nnz())
        assert np.abs(rows - mat.indices).max() <= 8

    def test_determinism(self):
        assert circuit_laplacian(100, seed=9).allclose(circuit_laplacian(100, seed=9))
        assert banded_spd(80, 5, seed=9).allclose(banded_spd(80, 5, seed=9))

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            circuit_laplacian(1)
        with pytest.raises(ValueError):
            banded_spd(10, 0)


class TestRHS:
    def test_max_norm_normalisation(self, poisson16):
        b = paper_rhs(poisson16, seed=5)
        assert np.abs(b).max() == pytest.approx(max_norm(poisson16))

    def test_deterministic_per_seed(self, poisson16):
        assert np.allclose(paper_rhs(poisson16, 1), paper_rhs(poisson16, 1))
        assert not np.allclose(paper_rhs(poisson16, 1), paper_rhs(poisson16, 2))

    def test_paper_rtol(self):
        assert PAPER_RTOL == 1e-8


class TestCatalog:
    def test_table1_has_39_cases(self):
        cases = table1_cases()
        assert len(cases) == 39
        assert [c.case_id for c in cases] == list(range(1, 40))

    def test_table2_has_8_cases(self):
        cases = table2_cases()
        assert len(cases) == 8
        assert all(c.large for c in cases)

    def test_all_cases_build_spd(self):
        for case in table1_cases() + table2_cases():
            mat = case.build()
            assert is_symmetric(mat), case.name
            assert np.all(mat.diagonal() > 0), case.name

    def test_scale_grows_problem(self):
        case = get_case("ecology2")
        small = case.build(1.0)
        big = case.build(4.0)
        assert big.nrows > 2 * small.nrows

    def test_get_case(self):
        assert get_case("thermal2").problem_type == "thermal"
        assert get_case("Queen_4147", large=True).large
        with pytest.raises(KeyError):
            get_case("nonexistent")

    def test_paper_records_sane(self):
        for case in table1_cases():
            rec = case.paper
            assert rec.fsai_iters >= rec.comm_iters > 0
            assert rec.comm_nnz_pct >= rec.fsaie_nnz_pct > 0
            assert rec.cores > 0 and rec.nodes > 0

    def test_default_rank_count_bounds(self):
        assert default_rank_count(100) == 2
        assert default_rank_count(10**9) == 12
        assert 2 <= default_rank_count(30000) <= 12

    def test_build_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            get_case("gyro").build(0.0)


class TestCatalogScaling:
    @pytest.mark.parametrize("case", table1_cases(), ids=lambda c: c.name)
    def test_every_case_scales_up(self, case):
        small = case.build(1.0)
        big = case.build(2.0)
        assert big.nrows >= small.nrows
        assert big.nnz > small.nnz
        assert is_symmetric(big)

    @pytest.mark.parametrize("case", table2_cases(), ids=lambda c: c.name)
    def test_large_set_scales_up(self, case):
        small = case.build(1.0)
        big = case.build(2.0)
        assert big.nnz > small.nnz
