"""Smoke tier for the solve-farm serving suite and its regression gate.

Runs the first concurrency rung of :mod:`benchmarks.serve_bench`, checks
its deterministic claims (exact admission counts, exact warm-cache hit
pattern, clean §4 audits, the warm-over-cold speedup floor), then drives
``scripts/check_bench_regression.py --serve`` end-to-end against the
recorded baseline, exactly how CI invokes it.  Carries the
``serve_smoke`` marker — deselect with ``-m "not serve_smoke"`` for a
faster tier-1 run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from serve_bench import (  # noqa: E402
    ADMISSION_PATTERN,
    QUICK_RUNGS,
    SPEEDUP_FLOOR,
    VARIANTS,
    failed_claims,
    run_serve_suite,
    write_serve_suite,
)


@pytest.fixture(scope="module")
def quick_suite():
    return run_serve_suite(quick=True)


@pytest.mark.serve_smoke
def test_quick_suite_holds_serving_claims(quick_suite):
    result = quick_suite
    assert result["suite"] == "serve"
    assert result["config"]["rungs"] == list(QUICK_RUNGS)
    assert failed_claims(result) == [], failed_claims(result)
    s = result["summary"]
    # admission replay: the fixed pattern sheds exactly one request per
    # reason class beyond each deterministic bound (the unknown tenant has
    # no registered stats, so it rides outside the per-tenant shed total)
    assert (
        s["admission.admitted"] + s["admission.shed"]
        + s["admission.shed_unknown"]
    ) == len(ADMISSION_PATTERN)
    assert s["admission.shed_unknown"] == 1
    assert s["admission.shed_queue_full"] == 2
    assert s["admission.shed_tenant_budget"] == 2
    (n,) = QUICK_RUNGS
    # cold phase: caching disabled, every request pays the full setup
    assert s[f"r{n}.cold.structure_builds"] == n
    assert s[f"r{n}.cold.cache_hits"] == 0
    # warm phase: one pre-warm build, then everything hits the structure
    # tier; the invariance audit ran once per non-base value variant
    assert s[f"r{n}.warm.structure_misses"] == 1
    assert s[f"r{n}.warm.structure_hits"] == n + VARIANTS - 1
    assert s[f"r{n}.warm.audits"] == VARIANTS - 1
    assert s[f"r{n}.warm.audit_violations"] == 0
    assert s[f"r{n}.warm.schedule_invariant"] == 1
    assert s[f"r{n}.warm_cold_speedup"] >= SPEEDUP_FLOOR
    # per-rung serve-report documents ride along for drill-down
    assert result["serve"][f"r{n}"]["cold"]["format"] == "repro-serve-report"
    assert result["serve"][f"r{n}"]["warm"]["format"] == "repro-serve-report"


@pytest.mark.serve_smoke
def test_serve_gate_is_clean(quick_suite, tmp_path):
    bench = write_serve_suite(quick_suite, tmp_path / "BENCH_serve.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_bench_regression.py"),
         "--serve", "--bench", str(bench)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=480,
    )
    assert proc.returncode == 0, (
        f"check_bench_regression.py --serve failed:\n{proc.stdout}{proc.stderr}"
    )
    assert "serve floor:" in proc.stdout
    assert "OK: benchmark counters within tolerance of the baseline" in proc.stdout


@pytest.mark.serve_smoke
def test_gate_rejects_a_regressed_hit_count(quick_suite, tmp_path):
    doc = {
        **quick_suite,
        "summary": dict(quick_suite["summary"]),
    }
    (n,) = QUICK_RUNGS
    doc["summary"][f"r{n}.warm.structure_hits"] -= 1
    doc["summary"][f"r{n}.warm.structure_misses"] += 1
    bench = write_serve_suite(doc, tmp_path / "BENCH_regressed.json",
                              report=False)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_bench_regression.py"),
         "--serve", "--bench", str(bench)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=480,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
