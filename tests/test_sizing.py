"""Unit tests for the §5.2 parallel-configuration sizing rule."""

from __future__ import annotations

import pytest

from repro.matgen import poisson2d
from repro.perfmodel import SKYLAKE, select_rank_count


class TestSizingRule:
    def test_initial_ranks_follow_workload(self):
        mat = poisson2d(40)  # ~7900 nnz
        res = select_rank_count(
            mat, SKYLAKE, threads_per_process=8, entries_per_thread=250,
            efficiency_threshold=2.0,  # forbid all doublings
        )
        assert res.ranks == max(1, round(mat.nnz / (8 * 250)))
        assert res.cores == res.ranks * 8
        assert res.efficiencies == ()

    def test_doubling_accepted_when_compute_dominates(self):
        # large per-rank work: halving it is nearly free => efficiency ~1
        mat = poisson2d(48)
        res = select_rank_count(
            mat, SKYLAKE, threads_per_process=1,
            entries_per_thread=mat.nnz,  # start at 1 rank
            efficiency_threshold=0.5,
            max_ranks=4,
        )
        assert res.ranks >= 2
        assert all(e >= 0.5 for e in res.efficiencies)

    def test_threshold_stops_doubling(self):
        mat = poisson2d(24)
        strict = select_rank_count(
            mat, SKYLAKE, entries_per_thread=200, efficiency_threshold=0.999,
            threads_per_process=1, max_ranks=32,
        )
        loose = select_rank_count(
            mat, SKYLAKE, entries_per_thread=200, efficiency_threshold=0.10,
            threads_per_process=1, max_ranks=32,
        )
        assert strict.ranks <= loose.ranks

    def test_caps_respected(self):
        mat = poisson2d(16)
        res = select_rank_count(
            mat, SKYLAKE, entries_per_thread=1, threads_per_process=1, max_ranks=8,
            efficiency_threshold=0.0,
        )
        assert res.ranks <= 8

    def test_rejects_bad_arguments(self):
        mat = poisson2d(8)
        with pytest.raises(ValueError):
            select_rank_count(mat, SKYLAKE, threads_per_process=0)
        with pytest.raises(ValueError):
            select_rank_count(mat, SKYLAKE, entries_per_thread=0)
