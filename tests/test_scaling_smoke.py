"""Smoke tier for the weak-scaling suite and its regression gate.

Runs the 64-rank rung of :mod:`benchmarks.scaling_bench` on the event
engine (the quick configuration CI gates on) and then drives
``scripts/check_bench_regression.py --scaling`` end-to-end against the
recorded baseline, exactly how CI invokes it.  Carries the
``scaling_smoke`` marker — deselect with ``-m "not scaling_smoke"`` for a
faster tier-1 run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from scaling_bench import run_scaling_suite  # noqa: E402


@pytest.mark.scaling_smoke
def test_quick_suite_is_complete_and_invariant():
    result = run_scaling_suite(quick=True)
    assert result["config"]["engine"] == "events"
    entry = result["scaling"]["r64"]
    assert entry["ranks"] == 64
    assert entry["rows"] == 64 * entry["rows_per_rank"]
    assert 0 < entry["iterations"] <= result["config"]["max_iterations"]
    assert entry["messages"] > 0
    assert entry["bytes"] > entry["messages"]  # multi-byte payloads
    assert entry["invariant"] and entry["halo_invariant"]
    assert entry["rel_residual"] < 1.0  # the solve made progress
    summary = result["summary"]
    for metric in ("iterations", "messages", "bytes", "modeled_ms",
                   "max_bsp_wait_ms", "wall_s", "invariant", "halo_invariant"):
        assert f"r64.{metric}" in summary


@pytest.mark.scaling_smoke
def test_scaling_gate_is_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_bench_regression.py"),
         "--scaling"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=480,
    )
    assert proc.returncode == 0, (
        f"check_bench_regression.py --scaling failed:\n{proc.stdout}{proc.stderr}"
    )
    assert "OK: benchmark counters within tolerance" in proc.stdout
