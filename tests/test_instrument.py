"""Unit and integration tests for :mod:`repro.instrument`."""

from __future__ import annotations

import json

import pytest

from repro.core import build_fsaie_comm, pcg
from repro.instrument import (
    NULL_METRICS,
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_metrics,
    get_tracer,
    read_json_trace,
    to_chrome_trace,
    tracing,
    write_chrome_trace,
    write_json_trace,
)
from repro.instrument.export import spans_from_dicts
from repro.mpisim.tracker import CommTracker


class FakeClock:
    """Deterministic clock: every reading advances by ``step`` seconds."""

    def __init__(self, step: float = 1.0):
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        t = self.now
        self.now += self.step
        return t


class TestTracer:
    def test_span_records_duration(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("work"):
            pass
        (span,) = tracer.spans
        assert span.name == "work"
        assert span.duration == 1.0
        assert span.parent_id is None

    def test_nesting_builds_a_tree(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b"):
                pass
        inner = tracer.children(outer)
        assert [s.name for s in inner] == ["inner.a", "inner.b"]
        assert all(s.parent_id == outer.span_id for s in inner)
        assert tracer.roots() == [outer]

    def test_tags_at_creation_and_set_tag(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("halo.exchange", rank=3, bytes=640) as span:
            span.set_tag("neighbours", 4)
        (span,) = tracer.by_name("halo.exchange")
        assert span.tags == {"rank": 3, "bytes": 640, "neighbours": 4}

    def test_exception_tags_error_and_closes(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        (span,) = tracer.spans
        assert span.tags["error"] == "ValueError"
        assert span.end is not None

    def test_event_is_instant_and_nested(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer") as outer:
            ev = tracer.event("mpisim.send", src=0, dst=1)
        assert ev.duration == 0.0
        assert ev.parent_id == outer.span_id

    def test_current_tracks_innermost(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.current() is None
        with tracer.span("a"):
            with tracer.span("b") as b:
                assert tracer.current() is b
        assert tracer.current() is None

    def test_total_seconds_and_clear(self):
        tracer = Tracer(clock=FakeClock())
        for _ in range(3):
            with tracer.span("step"):
                pass
        assert tracer.total_seconds("step") == 3.0
        tracer.clear()
        assert len(tracer) == 0

    def test_spans_sorted_by_start(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("first"):
            with tracer.span("second"):
                pass
        # "second" closes before "first" but starts after it
        assert [s.name for s in tracer.spans] == ["first", "second"]


class TestDisabledMode:
    def test_defaults_are_null_singletons(self):
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS
        assert not get_tracer().enabled
        assert not get_metrics().enabled

    def test_null_tracer_records_nothing(self):
        with NULL_TRACER.span("anything", rank=1) as span:
            span.set_tag("ignored", True)
        assert NULL_TRACER.spans == []
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.event("x") is None

    def test_null_metrics_swallow_updates(self):
        NULL_METRICS.counter("n").inc(5)
        NULL_METRICS.gauge("g", rank=0).set(1.0)
        NULL_METRICS.histogram("h").observe(2.0)
        assert NULL_METRICS.collect() == []

    def test_enable_disable_roundtrip(self):
        tracer, metrics = enable_tracing()
        try:
            assert get_tracer() is tracer
            with get_tracer().span("visible"):
                pass
            assert len(tracer.by_name("visible")) == 1
        finally:
            disable_tracing()
        assert get_tracer() is NULL_TRACER

    def test_tracing_context_restores_previous(self):
        with tracing() as (outer_tracer, _):
            assert get_tracer() is outer_tracer
            with tracing() as (inner_tracer, _):
                assert get_tracer() is inner_tracer
            assert get_tracer() is outer_tracer
        assert get_tracer() is NULL_TRACER


class TestMetrics:
    def test_counter_get_or_create_by_tags(self):
        reg = MetricsRegistry()
        a = reg.counter("halo.bytes", rank=0)
        b = reg.counter("halo.bytes", rank=0)
        c = reg.counter("halo.bytes", rank=1)
        assert a is b and a is not c
        a.inc(8)
        c.inc(16)
        assert reg.value("halo.bytes", rank=0) == 8
        assert reg.sum_values("halo.bytes") == 24

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1)

    def test_gauge_last_value_wins(self):
        reg = MetricsRegistry()
        reg.gauge("nnz", rank=2).set(10)
        reg.gauge("nnz", rank=2).set(12)
        assert reg.value("nnz", rank=2) == 12

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == 2.5
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 4.0

    def test_find_filters_by_tags(self):
        reg = MetricsRegistry()
        for r in range(3):
            reg.gauge("precond.nnz_rank", rank=r).set(r * 10)
        assert len(reg.find("precond.nnz_rank")) == 3
        assert len(reg.find("precond.nnz_rank", rank=1)) == 1


class TestExport:
    def make_trace(self):
        tracer = Tracer(clock=FakeClock())
        metrics = MetricsRegistry()
        with tracer.span("pcg.solve", ranks=4):
            with tracer.span("pcg.iteration", index=0):
                tracer.event("mpisim.send", src=0, dst=1, bytes=64)
        metrics.counter("pcg.iterations").inc(1)
        metrics.gauge("precond.nnz", method="FSAI").set(100)
        return tracer, metrics

    def test_json_roundtrip(self, tmp_path):
        tracer, metrics = self.make_trace()
        path = write_json_trace(tmp_path / "t.json", tracer, metrics)
        doc = read_json_trace(path)
        spans = spans_from_dicts(doc["spans"])
        assert [s.name for s in spans] == [s.name for s in tracer.spans]
        assert [s.tags for s in spans] == [s.tags for s in tracer.spans]
        assert [s.parent_id for s in spans] == [s.parent_id for s in tracer.spans]
        assert {m["name"] for m in doc["metrics"]} == {
            "pcg.iterations",
            "precond.nnz",
        }

    def test_read_rejects_foreign_documents(self, tmp_path):
        from repro.instrument import TraceError

        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"something": "else"}))
        with pytest.raises(TraceError):
            read_json_trace(path)
        # TraceError stays catchable as the ValueError it always was
        with pytest.raises(ValueError):
            read_json_trace(path)

    def test_read_rejects_non_monotonic_spans(self, tmp_path):
        from repro.instrument import TraceError

        tracer, metrics = self.make_trace()
        path = write_json_trace(tmp_path / "t.json", tracer, metrics)
        doc = json.loads(path.read_text())
        # tamper: drag the last span's timestamps before its predecessor's
        doc["spans"][-1]["start"] = doc["spans"][0]["start"] - 5.0
        doc["spans"][-1]["end"] = doc["spans"][0]["start"] - 4.0
        path.write_text(json.dumps(doc))
        with pytest.raises(TraceError, match="non-monotonic"):
            read_json_trace(path)

    def test_read_rejects_span_ending_before_start(self, tmp_path):
        from repro.instrument import TraceError

        tracer, metrics = self.make_trace()
        path = write_json_trace(tmp_path / "t.json", tracer, metrics)
        doc = json.loads(path.read_text())
        doc["spans"][0]["end"] = doc["spans"][0]["start"] - 1.0
        path.write_text(json.dumps(doc))
        with pytest.raises(TraceError, match="ends before it starts"):
            read_json_trace(path)

    def test_chrome_trace_structure(self):
        tracer, metrics = self.make_trace()
        doc = to_chrome_trace(tracer, metrics)
        events = doc["traceEvents"]
        complete = [e for e in events if e["ph"] == "X"]
        instant = [e for e in events if e["ph"] == "i"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {e["name"] for e in complete} == {"pcg.solve", "pcg.iteration"}
        assert instant[0]["name"] == "mpisim.send"
        assert any(e["name"] == "process_name" for e in meta)
        # timestamps are µs offsets from the earliest span
        assert min(e["ts"] for e in complete) == 0
        assert all(e["dur"] >= 0 for e in complete)
        assert doc["otherData"]["metrics"]

    def test_chrome_trace_written_file_is_json(self, tmp_path):
        tracer, metrics = self.make_trace()
        path = write_chrome_trace(tmp_path / "chrome.json", tracer, metrics)
        doc = json.loads(path.read_text())
        assert "traceEvents" in doc


class TestSolverIntegration:
    def test_pcg_emits_one_span_per_iteration(self, poisson3d8):
        from repro.dist import DistMatrix, DistVector, RowPartition
        from repro.matgen import paper_rhs

        part = RowPartition.from_matrix(poisson3d8, 4, seed=1)
        da = DistMatrix.from_global(poisson3d8, part)
        b = DistVector.from_global(paper_rhs(poisson3d8, seed=1), part)
        pre = build_fsaie_comm(poisson3d8, part)
        tracker = CommTracker()
        with tracing() as (tracer, metrics):
            result = pcg(da, b, precond=pre, tracker=tracker)
        assert result.converged
        iteration_spans = tracer.by_name("pcg.iteration")
        assert len(iteration_spans) == result.iterations
        assert metrics.value("pcg.iterations") == result.iterations
        # every iteration span contains the SpMV and preconditioner children
        for it in iteration_spans:
            child_names = {s.name for s in tracer.children(it)}
            assert "pcg.spmv" in child_names
            assert "pcg.precond" in child_names

    def test_halo_exchange_bytes_match_tracker(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        pre = build_fsaie_comm(mat, part)
        tracker = CommTracker()
        with tracing() as (tracer, _):
            pcg(da, b, precond=pre, tracker=tracker)
        halo_bytes = sum(s.tags["bytes"] for s in tracer.by_name("halo.exchange"))
        assert halo_bytes == tracker.total_bytes > 0

    def test_build_phases_traced(self, poisson3d8):
        from repro.dist import RowPartition

        part = RowPartition.from_matrix(poisson3d8, 4, seed=1)
        with tracing() as (tracer, _):
            build_fsaie_comm(poisson3d8, part)
        for phase in ("precond.pattern", "precond.extension",
                      "precond.filtering", "precond.factor"):
            assert tracer.by_name(phase), f"missing {phase} span"

    def test_disabled_mode_interferes_with_nothing(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        pre = build_fsaie_comm(mat, part)
        result = pcg(da, b, precond=pre)
        assert result.converged
        assert get_tracer().spans == []


class TestSpmdConcurrency:
    """Tracer and MetricsRegistry under the SPMD thread engine.

    The observe layer reads rank-tagged spans and instruments recorded by
    concurrently executing rank threads; these tests pin down that nothing
    is lost or cross-attributed under that concurrency.
    """

    RANKS = 4
    EVENTS_PER_RANK = 50

    def test_no_events_lost_across_concurrent_ranks(self):
        from repro.mpisim import run_spmd

        with tracing() as (tracer, metrics):

            def prog(comm):
                for k in range(self.EVENTS_PER_RANK):
                    tracer.event("spmd.tick", rank=comm.rank, k=k)
                    metrics.counter("spmd.ticks", rank=comm.rank).inc()
                    metrics.counter("spmd.shared").inc()
                return comm.rank

            assert run_spmd(prog, self.RANKS, timeout=30) == list(range(self.RANKS))
            ticks = [s for s in tracer.spans if s.name == "spmd.tick"]
            assert len(ticks) == self.RANKS * self.EVENTS_PER_RANK
            for rank in range(self.RANKS):
                mine = [s for s in ticks if s.tags["rank"] == rank]
                assert len(mine) == self.EVENTS_PER_RANK
                # per-rank event payloads intact, in program order
                assert [s.tags["k"] for s in mine] == list(range(self.EVENTS_PER_RANK))
                assert metrics.value("spmd.ticks", rank=rank) == self.EVENTS_PER_RANK
            # one shared instrument incremented from every rank thread
            assert metrics.value("spmd.shared") == self.RANKS * self.EVENTS_PER_RANK

    def test_span_parents_stay_per_thread(self):
        from repro.mpisim import run_spmd

        with tracing() as (tracer, _):

            def prog(comm):
                with tracer.span("spmd.outer", rank=comm.rank):
                    tracer.event("spmd.inner", rank=comm.rank)
                    with tracer.span("spmd.mid", rank=comm.rank):
                        tracer.event("spmd.deep", rank=comm.rank)

            run_spmd(prog, self.RANKS, timeout=30)
            outer = {s.tags["rank"]: s for s in tracer.spans if s.name == "spmd.outer"}
            mid = {s.tags["rank"]: s for s in tracer.spans if s.name == "spmd.mid"}
            assert len(outer) == self.RANKS and len(mid) == self.RANKS
            # events nest under their *own* rank's open span, never a sibling's
            for span in (s for s in tracer.spans if s.name == "spmd.inner"):
                assert span.parent_id == outer[span.tags["rank"]].span_id
            for span in (s for s in tracer.spans if s.name == "spmd.deep"):
                assert span.parent_id == mid[span.tags["rank"]].span_id
            for rank, span in mid.items():
                assert span.parent_id == outer[rank].span_id
            # everything a rank recorded sits on that rank's own thread
            for span in (s for s in tracer.spans if s.name.startswith("spmd.")):
                assert span.thread == outer[span.tags["rank"]].thread

    def test_histograms_accumulate_exactly_under_concurrency(self):
        from repro.mpisim import run_spmd

        with tracing() as (_, metrics):

            def prog(comm):
                hist = metrics.histogram("spmd.load")
                for k in range(self.EVENTS_PER_RANK):
                    hist.observe(1.0)

            run_spmd(prog, self.RANKS, timeout=30)
            (hist,) = metrics.find("spmd.load")
            assert hist.count == self.RANKS * self.EVENTS_PER_RANK
            assert hist.total == pytest.approx(self.RANKS * self.EVENTS_PER_RANK)

    def test_nested_tracing_restores_sinks_around_spmd_run(self):
        from repro.mpisim import run_spmd

        with tracing() as (outer_tracer, outer_metrics):
            outer_tracer.event("outer.before")
            with tracing() as (inner_tracer, inner_metrics):
                run_spmd(
                    lambda comm: get_tracer().event("spmd.tick", rank=comm.rank),
                    2,
                    timeout=30,
                )
                assert get_tracer() is inner_tracer
                assert get_metrics() is inner_metrics
            # inner scope captured the SPMD events; outer sinks restored clean
            assert len(inner_tracer.by_name("spmd.tick")) == 2
            assert get_tracer() is outer_tracer
            assert get_metrics() is outer_metrics
            assert outer_tracer.by_name("spmd.tick") == []
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS
