"""Smoke tests for the microbenchmark suite and the no-alloc CI gate.

Marked ``bench_smoke`` so they can be selected (or skipped) separately::

    PYTHONPATH=src python -m pytest -m bench_smoke -q
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.kernels import format_summary, run_suite, write_suite

REPO_ROOT = Path(__file__).resolve().parent.parent

pytestmark = pytest.mark.bench_smoke


def test_run_suite_quick_shape(tmp_path):
    result = run_suite(sizes=(12, 16), reps=1, quick=True)
    assert result["spmv"], "spmv section must not be empty"
    for rec in result["spmv"]:
        assert rec["planned_s"] > 0.0
        assert rec["speedup"] > 0.0
    summary = result["summary"]
    assert summary["pcg_hot_allocs"] == 0
    assert result["pcg"]["solutions_match"]
    assert "spmv_speedup_largest" in summary
    assert "setup_batched_speedup" in summary
    assert result["setup"]["backend"] == "numpy"
    assert result["setup"]["values_max_abs_diff"] <= 1e-12

    path = write_suite(result, tmp_path / "BENCH_kernels.json")
    loaded = json.loads(Path(path).read_text())
    assert loaded["summary"] == summary

    text = format_summary(result)
    assert "kernel microbenchmarks" in text


def test_check_no_alloc_script_passes():
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_no_alloc.py"),
         "--grid", "16"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "allocation-free" in proc.stdout


def test_check_no_alloc_script_fails_on_tight_baseline(tmp_path):
    # A negative allowance can never be met, so the gate must trip.
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({"hot_allocs_per_iteration": -1.0}))
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_no_alloc.py"),
         "--grid", "16", "--baseline", str(baseline)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1
    assert "FAIL" in proc.stderr


def test_write_suite_emits_companion_report(tmp_path):
    result = run_suite(sizes=(12,), reps=1, quick=True)
    path = write_suite(result, tmp_path / "BENCH_kernels.json")
    from repro.observe import RunReport

    report = RunReport.load(Path(path).with_suffix(".report.json"))
    assert report.metrics["bench.pcg_hot_allocs"] == 0.0
    assert "bench" in report.sections


def test_check_no_alloc_emits_run_report(tmp_path):
    out = tmp_path / "gate.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_no_alloc.py"),
         "--grid", "16", "--report", str(out)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    from repro.observe import RunReport

    report = RunReport.load(out)
    assert report.metrics["kernels.hot_allocs_per_iteration"] == 0.0
    assert report.meta["label"] == "no-alloc-gate"


def test_bench_regression_gate_passes_on_recorded_fixture():
    fixture = REPO_ROOT / "tests" / "fixtures" / "BENCH_kernels_recorded.json"
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_bench_regression.py"),
         "--bench", str(fixture)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "OK: benchmark counters within tolerance" in proc.stdout


def test_bench_regression_gate_fails_on_alloc_regression(tmp_path):
    fixture = REPO_ROOT / "tests" / "fixtures" / "BENCH_kernels_recorded.json"
    doc = json.loads(fixture.read_text())
    doc["summary"]["pcg_hot_allocs"] = 3
    doc["pcg"]["workspace_allocs_hot"] = 3
    mutated = tmp_path / "BENCH_regressed.json"
    mutated.write_text(json.dumps(doc))
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_bench_regression.py"),
         "--bench", str(mutated)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 1, proc.stdout + proc.stderr
    assert "FAIL" in proc.stderr
    assert "bench.pcg_hot_allocs" in proc.stdout


def test_bench_regression_gate_rejects_malformed_input(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "check_bench_regression.py"),
         "--bench", str(bad)],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 2
    assert "error:" in proc.stderr
    assert "Traceback" not in proc.stderr
