"""Tests of the solver/preconditioner API surface: ``precond=M`` resolution
and the consolidated :class:`PrecondOptions` (with its deprecation shim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FilterSpec,
    FSAIOptions,
    PrecondOptions,
    SetupOptions,
    bicgstab,
    build_fsai,
    build_fsaie_comm,
    pcg,
    pipelined_pcg,
)
from repro.core.cg import resolve_precond


class TestResolvePrecond:
    def test_none_passes_through(self):
        assert resolve_precond(None) is None

    def test_object_with_apply(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        pre = build_fsai(mat, part)
        fn = resolve_precond(pre)
        assert fn == pre.apply
        z = fn(b, None)
        assert np.allclose(z.to_global(), pre.apply(b, None).to_global())

    def test_bare_callable_kept(self):
        fn = lambda r, tracker: r  # noqa: E731
        assert resolve_precond(fn) is fn

    def test_rejects_non_callable(self):
        with pytest.raises(TypeError, match="precond"):
            resolve_precond(42)
        with pytest.raises(TypeError):
            resolve_precond(object())

    def test_solvers_accept_object_and_callable(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        pre = build_fsai(mat, part)
        via_object = pcg(da, b, precond=pre)
        via_callable = pcg(da, b, precond=pre.apply)
        assert via_object.iterations == via_callable.iterations
        assert np.allclose(
            via_object.x.to_global(), via_callable.x.to_global()
        )

    def test_variant_solvers_accept_object(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        pre = build_fsai(mat, part)
        assert pipelined_pcg(da, b, precond=pre).converged
        assert bicgstab(da, b, precond=pre).converged


class TestPrecondOptions:
    def test_defaults(self):
        opts = PrecondOptions()
        assert opts.fsai == FSAIOptions()
        assert opts.line_bytes == 64
        assert opts.filter == FilterSpec()

    def test_sub_configs(self):
        opts = PrecondOptions(
            fsai=FSAIOptions(level=2),
            line_bytes=256,
            filter=FilterSpec(0.05, dynamic=False),
        )
        assert opts.fsai.level == 2
        assert opts.line_bytes == 256
        assert opts.filter.value == 0.05 and not opts.filter.dynamic

    def test_frozen(self):
        opts = PrecondOptions()
        with pytest.raises(AttributeError):
            opts.line_bytes = 128

    def test_legacy_fsai_keywords_warn_and_forward(self):
        with pytest.warns(DeprecationWarning, match="fsai=FSAIOptions"):
            opts = PrecondOptions(threshold=0.1, level=2)
        assert opts.fsai == FSAIOptions(threshold=0.1, level=2)

    def test_legacy_filter_keywords_warn_and_forward(self):
        with pytest.warns(DeprecationWarning, match="FilterSpec"):
            opts = PrecondOptions(filter_value=0.2, dynamic=False)
        assert opts.filter == FilterSpec(0.2, dynamic=False)

    def test_bare_numeric_filter_coerced(self):
        with pytest.warns(DeprecationWarning, match="FilterSpec"):
            opts = PrecondOptions(filter=0.1)
        assert opts.filter == FilterSpec(0.1)

    def test_mixing_new_and_legacy_fsai_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                PrecondOptions(fsai=FSAIOptions(), level=2)

    def test_mixing_new_and_legacy_filter_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                PrecondOptions(filter=FilterSpec(0.05), dynamic=False)

    def test_setup_sub_config(self):
        opts = PrecondOptions(setup=SetupOptions(dtype="float32", batched=False))
        assert opts.setup.dtype == "float32"
        assert not opts.setup.batched

    def test_setup_defaults(self):
        assert PrecondOptions().setup == SetupOptions()

    def test_legacy_setup_keywords_warn_and_forward(self):
        with pytest.warns(DeprecationWarning, match="setup=SetupOptions"):
            opts = PrecondOptions(backend="numpy", setup_dtype="float32")
        assert opts.setup == SetupOptions(backend="numpy", dtype="float32")

    def test_mixing_new_and_legacy_setup_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="not both"):
                PrecondOptions(setup=SetupOptions(), batched=False)

    def test_legacy_parallel_keyword_warns_and_drops(self):
        with pytest.warns(DeprecationWarning, match="parallel"):
            opts = PrecondOptions(parallel=4)
        assert opts.setup == SetupOptions()

    def test_legacy_parallel_keyword_still_validates(self):
        with pytest.raises(ValueError, match="positive worker count"):
            PrecondOptions(parallel=0)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            PrecondOptions(bananas=3)

    def test_builders_share_the_surface(self, poisson3d8):
        from repro.dist import RowPartition

        part = RowPartition.from_matrix(poisson3d8, 4, seed=1)
        opts = PrecondOptions(filter=FilterSpec(0.05), line_bytes=64)
        via_options = build_fsaie_comm(poisson3d8, part, opts)
        via_overrides = build_fsaie_comm(
            poisson3d8, part, filter=FilterSpec(0.05), line_bytes=64
        )
        assert via_options.nnz == via_overrides.nnz

    def test_builders_reject_options_plus_overrides(self, poisson3d8):
        from repro.dist import RowPartition

        part = RowPartition.from_matrix(poisson3d8, 4, seed=1)
        with pytest.raises(TypeError, match="not both"):
            build_fsaie_comm(poisson3d8, part, PrecondOptions(), line_bytes=64)

    def test_legacy_spelling_matches_new_end_to_end(self, poisson3d8):
        from repro.dist import RowPartition

        part = RowPartition.from_matrix(poisson3d8, 4, seed=1)
        new = build_fsaie_comm(
            poisson3d8, part, PrecondOptions(filter=FilterSpec(0.05, dynamic=False))
        )
        with pytest.warns(DeprecationWarning):
            old = build_fsaie_comm(
                poisson3d8, part, PrecondOptions(filter_value=0.05, dynamic=False)
            )
        assert new.nnz == old.nnz
        assert np.array_equal(new.nnz_per_rank(), old.nnz_per_rank())
