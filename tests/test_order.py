"""Unit tests for RCM ordering and symmetric permutations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.matgen import circuit_laplacian, poisson2d
from repro.order import (
    bandwidth,
    inverse_permutation,
    permute_symmetric,
    permute_vector,
    rcm_ordering,
    unpermute_vector,
)
from repro.sparse import CSRMatrix

from conftest import random_sparse


class TestPermutations:
    def test_inverse_permutation(self, rng):
        perm = rng.permutation(20)
        inv = inverse_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(20))
        assert np.array_equal(inv[perm], np.arange(20))

    def test_permute_symmetric_matches_dense(self, small_spd, rng):
        perm = rng.permutation(small_spd.nrows)
        permuted = permute_symmetric(small_spd, perm)
        dense = small_spd.to_dense()
        assert np.allclose(permuted.to_dense(), dense[np.ix_(perm, perm)])

    def test_permuted_spmv_equivalence(self, small_spd, rng):
        perm = rng.permutation(small_spd.nrows)
        permuted = permute_symmetric(small_spd, perm)
        x = rng.standard_normal(small_spd.nrows)
        direct = small_spd.spmv(x)
        via_perm = unpermute_vector(permuted.spmv(permute_vector(x, perm)), perm)
        assert np.allclose(direct, via_perm)

    def test_permutation_preserves_spd(self, small_spd, rng):
        from repro.sparse.ops import check_spd

        perm = rng.permutation(small_spd.nrows)
        check_spd(permute_symmetric(small_spd, perm))

    def test_vector_roundtrip(self, rng):
        perm = rng.permutation(15)
        x = rng.standard_normal(15)
        assert np.allclose(unpermute_vector(permute_vector(x, perm), perm), x)

    def test_rejects_bad_permutation(self, small_spd):
        with pytest.raises(ShapeError):
            permute_symmetric(small_spd, np.zeros(small_spd.nrows, dtype=int))
        with pytest.raises(ShapeError):
            permute_symmetric(small_spd, np.arange(small_spd.nrows + 1))

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            permute_symmetric(random_sparse(rng, 3, 5), np.arange(3))


class TestRCM:
    def test_result_is_a_permutation(self, poisson16):
        perm = rcm_ordering(poisson16)
        assert np.array_equal(np.sort(perm), np.arange(poisson16.nrows))

    def test_reduces_bandwidth_of_shuffled_grid(self, rng):
        mat = poisson2d(14)
        shuffled = permute_symmetric(mat, rng.permutation(mat.nrows))
        reordered = permute_symmetric(shuffled, rcm_ordering(shuffled))
        assert bandwidth(reordered) < bandwidth(shuffled) / 2
        # a grid's optimal bandwidth is its width; RCM should get close
        assert bandwidth(reordered) <= 3 * 14

    def test_identity_on_diagonal_matrix(self):
        mat = CSRMatrix.identity(6)
        perm = rcm_ordering(mat)
        assert np.array_equal(np.sort(perm), np.arange(6))
        assert bandwidth(permute_symmetric(mat, perm)) == 0

    def test_disconnected_components(self):
        # two disjoint paths: 0-1-2 and 3-4
        dense = np.eye(5) * 2
        for a, b in ((0, 1), (1, 2), (3, 4)):
            dense[a, b] = dense[b, a] = -1
        perm = rcm_ordering(CSRMatrix.from_dense(dense))
        assert np.array_equal(np.sort(perm), np.arange(5))

    def test_bandwidth_helper(self):
        mat = CSRMatrix.from_coo((4, 4), [0, 3, 2], [0, 0, 2], [1.0, 1.0, 1.0])
        assert bandwidth(mat) == 3
        assert bandwidth(CSRMatrix.zeros((3, 3))) == 0

    def test_rcm_improves_circuit_matrix(self):
        mat = circuit_laplacian(300, seed=5)
        reordered = permute_symmetric(mat, rcm_ordering(mat))
        assert bandwidth(reordered) < bandwidth(mat)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            rcm_ordering(random_sparse(rng, 3, 5))


class TestOrderingInteraction:
    def test_rcm_keeps_fsai_solvable(self, rng):
        """The full pipeline works identically on a reordered system."""
        from repro.core import build_fsaie_comm, pcg
        from repro.dist import DistMatrix, DistVector, RowPartition
        from repro.matgen import paper_rhs

        mat = poisson2d(12)
        perm = rcm_ordering(permute_symmetric(mat, rng.permutation(mat.nrows)))
        # solve the shuffled-then-RCM system
        shuffled = permute_symmetric(mat, rng.permutation(mat.nrows))
        reordered = permute_symmetric(shuffled, rcm_ordering(shuffled))
        part = RowPartition.from_matrix(reordered, 3, seed=0)
        da = DistMatrix.from_global(reordered, part)
        b = DistVector.from_global(paper_rhs(reordered, 0), part)
        pre = build_fsaie_comm(reordered, part)
        res = pcg(da, b, precond=pre.apply)
        assert res.converged
        del perm
