"""Unit tests for the cache-friendly pattern extension (Alg. 3).

The three invariants tested here are the heart of the paper:
1. every added entry's x operand shares a cache line with a base entry of
   the same row (cache friendliness);
2. LOCAL mode adds only local columns (FSAIE);
3. COMM mode adds halo entries only in already-received columns of rows
   already sent to the column's owner (communication invariance).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachesim import doubles_per_line
from repro.core import ExtensionMode, extend_dist_pattern, fsai_pattern
from repro.dist import DistMatrix, HaloSchedule, RowPartition
from repro.matgen import poisson2d, poisson3d


@pytest.fixture
def dist_pattern():
    mat = poisson2d(20)
    part = RowPartition.from_matrix(mat, 4, seed=5)
    base = fsai_pattern(mat)
    return mat, part, base, DistMatrix.from_global(base.to_csr(), part)


def union_pattern(base, extensions):
    rows = np.concatenate([e.rows for e in extensions])
    cols = np.concatenate([e.cols for e in extensions])
    if rows.size == 0:
        return base
    from repro.core.precond import _union_with_entries

    return _union_with_entries(base, rows, cols)


class TestBasicProperties:
    @pytest.mark.parametrize("mode", [ExtensionMode.LOCAL, ExtensionMode.COMM])
    def test_added_entries_are_new_and_strictly_lower(self, dist_pattern, mode):
        _, _, base, dist = dist_pattern
        for ext in extend_dist_pattern(dist, 64, mode):
            for i, j in zip(ext.rows, ext.cols):
                assert j < i  # strictly lower triangular
                assert not base.contains(int(i), int(j))  # genuinely new

    @pytest.mark.parametrize("mode", [ExtensionMode.LOCAL, ExtensionMode.COMM])
    def test_rows_belong_to_their_rank(self, dist_pattern, mode):
        _, part, _, dist = dist_pattern
        for ext in extend_dist_pattern(dist, 64, mode):
            assert np.all(part.owner[ext.rows] == ext.rank)

    def test_comm_superset_of_local(self, dist_pattern):
        _, _, _, dist = dist_pattern
        local = extend_dist_pattern(dist, 64, ExtensionMode.LOCAL)
        comm = extend_dist_pattern(dist, 64, ExtensionMode.COMM)
        for le, ce in zip(local, comm):
            local_set = set(zip(le.rows.tolist(), le.cols.tolist()))
            comm_set = set(zip(ce.rows.tolist(), ce.cols.tolist()))
            assert local_set <= comm_set
            assert ce.n_local_added == le.n_added  # same local additions

    def test_local_mode_adds_no_halo(self, dist_pattern):
        _, _, _, dist = dist_pattern
        for ext in extend_dist_pattern(dist, 64, ExtensionMode.LOCAL):
            assert ext.n_halo_added == 0

    def test_comm_mode_adds_halo_somewhere(self, dist_pattern):
        _, _, _, dist = dist_pattern
        total_halo = sum(
            e.n_halo_added for e in extend_dist_pattern(dist, 64, ExtensionMode.COMM)
        )
        assert total_halo > 0  # a 4-way grid partition has eligible halo cells

    def test_one_value_per_line_adds_nothing(self, dist_pattern):
        _, _, _, dist = dist_pattern
        for ext in extend_dist_pattern(dist, 8, ExtensionMode.COMM):
            assert ext.n_added == 0

    def test_larger_lines_add_more(self, dist_pattern):
        _, _, _, dist = dist_pattern
        small = sum(e.n_added for e in extend_dist_pattern(dist, 64, ExtensionMode.COMM))
        large = sum(e.n_added for e in extend_dist_pattern(dist, 256, ExtensionMode.COMM))
        assert large > small


class TestCacheFriendliness:
    @pytest.mark.parametrize("line_bytes", [64, 256])
    def test_every_added_entry_shares_a_line_with_base(self, dist_pattern, line_bytes):
        _, part, _, dist = dist_pattern
        dpl = doubles_per_line(line_bytes)
        for ext in extend_dist_pattern(dist, line_bytes, ExtensionMode.COMM):
            lm = dist.locals[ext.rank]
            col_global = np.concatenate([lm.global_rows, lm.ext_cols])
            # local position of each global column id
            pos_of = {int(g): k for k, g in enumerate(col_global)}
            for gi, gj in zip(ext.rows, ext.cols):
                li = int(part.local_index[gi])
                cols = lm.csr.row(li)[0]
                lines = set((col // dpl) for col in cols.tolist())
                assert pos_of[int(gj)] // dpl in lines


class TestCommAwareness:
    def test_halo_additions_only_in_received_columns(self, dist_pattern):
        _, part, _, dist = dist_pattern
        for ext in extend_dist_pattern(dist, 64, ExtensionMode.COMM):
            lm = dist.locals[ext.rank]
            ext_col_set = set(lm.ext_cols.tolist())
            local_set = set(lm.global_rows.tolist())
            for gj in ext.cols.tolist():
                assert gj in ext_col_set or gj in local_set

    def test_halo_additions_only_in_sent_rows(self, dist_pattern):
        _, part, _, dist = dist_pattern
        for ext in extend_dist_pattern(dist, 64, ExtensionMode.COMM):
            lm = dist.locals[ext.rank]
            n_local = lm.n_local
            # rows sent to q: rows with an existing halo entry owned by q
            sent: dict[int, set[int]] = {}
            for li in range(n_local):
                cols = lm.csr.row(li)[0]
                for c in cols[cols >= n_local].tolist():
                    q = int(part.owner[lm.ext_cols[c - n_local]])
                    sent.setdefault(q, set()).add(int(lm.global_rows[li]))
            for gi, gj in zip(ext.rows.tolist(), ext.cols.tolist()):
                if part.owner[gj] != ext.rank:  # halo addition
                    q = int(part.owner[gj])
                    assert gi in sent.get(q, set())

    @pytest.mark.parametrize("mode", [ExtensionMode.LOCAL, ExtensionMode.COMM])
    def test_halo_schedule_unchanged_by_extension(self, dist_pattern, mode):
        """The paper's guarantee at the pattern level, for G and Gᵀ."""
        _, part, base, dist = dist_pattern
        extended = union_pattern(base, extend_dist_pattern(dist, 64, mode))
        assert HaloSchedule.from_pattern(extended, part) == HaloSchedule.from_pattern(
            base, part
        )
        assert HaloSchedule.from_pattern(
            extended.transpose(), part
        ) == HaloSchedule.from_pattern(base.transpose(), part)

    def test_unconstrained_fill_would_change_schedule(self, dist_pattern):
        """Sanity of the test above: violating the rule does change comms."""
        mat, part, base, _ = dist_pattern
        # add the full lower triangle of A² — ignores communication entirely
        from repro.core import FSAIOptions

        wide = fsai_pattern(mat, FSAIOptions(level=2))
        assert HaloSchedule.from_pattern(wide, part) != HaloSchedule.from_pattern(
            base, part
        )

    def test_single_rank_has_no_halo(self):
        mat = poisson3d(6)
        part = RowPartition.from_matrix(mat, 1)
        base = fsai_pattern(mat)
        dist = DistMatrix.from_global(base.to_csr(), part)
        exts = extend_dist_pattern(dist, 64, ExtensionMode.COMM)
        assert len(exts) == 1
        assert exts[0].n_halo_added == 0
        assert exts[0].n_local_added > 0
