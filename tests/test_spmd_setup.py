"""Unit tests for the fully distributed (SPMD) preconditioner setup."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FilterSpec,
    PrecondOptions,
    build_fsai,
    build_fsaie_comm,
    check_comm_invariance,
    pcg,
    spmd_build_fsaie_comm,
)
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.matgen import get_case, paper_rhs, poisson2d
from repro.mpisim import CommTracker


@pytest.fixture(scope="module")
def system():
    mat = poisson2d(16)
    part = RowPartition.from_matrix(mat, 4, seed=0)
    return mat, part


class TestSPMDSetup:
    @pytest.mark.parametrize("dynamic", [False, True])
    @pytest.mark.parametrize("filter_value", [0.01, 0.1])
    def test_matches_driver_build(self, system, dynamic, filter_value):
        mat, part = system
        spec = FilterSpec(filter_value, dynamic=dynamic)
        driver = build_fsaie_comm(mat, part, PrecondOptions(filter=spec))
        spmd = spmd_build_fsaie_comm(mat, part, filter_spec=spec)
        assert spmd.g.to_global().allclose(driver.g.to_global())
        assert np.allclose(spmd.filters, driver.filters)

    def test_matches_on_unstructured_case(self):
        case = get_case("G3_circuit")
        mat = case.build()
        part = RowPartition.from_matrix(mat, 5, seed=3)
        spec = FilterSpec(0.01, dynamic=True)
        driver = build_fsaie_comm(mat, part, PrecondOptions(filter=spec))
        spmd = spmd_build_fsaie_comm(mat, part, filter_spec=spec)
        assert spmd.g.to_global().allclose(driver.g.to_global())

    def test_larger_cache_lines(self, system):
        mat, part = system
        spec = FilterSpec(0.01, dynamic=True)
        driver = build_fsaie_comm(
            mat, part, PrecondOptions(line_bytes=256, filter=spec)
        )
        spmd = spmd_build_fsaie_comm(mat, part, line_bytes=256, filter_spec=spec)
        assert spmd.g.to_global().allclose(driver.g.to_global())

    def test_comm_invariance_and_solve(self, system):
        mat, part = system
        pre = spmd_build_fsaie_comm(mat, part)
        base = build_fsai(mat, part)
        assert check_comm_invariance(base, pre)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, 0), part)
        res = pcg(da, b, precond=pre.apply)
        assert res.converged

    def test_tracker_sees_setup_traffic(self, system):
        mat, part = system
        tracker = CommTracker()
        spmd_build_fsaie_comm(mat, part, tracker=tracker)
        # row requests + row data + diag exchange + allreduce rounds
        assert tracker.total_messages >= 3 * part.nparts * (part.nparts - 1)

    def test_single_rank(self, system):
        mat, _ = system
        part = RowPartition.from_matrix(mat, 1)
        pre = spmd_build_fsaie_comm(mat, part)
        driver = build_fsaie_comm(mat, part)
        assert pre.g.to_global().allclose(driver.g.to_global())
