"""Communication/computation overlap: split-phase halos and pipelined PCG.

Three layers are pinned here:

* the BSP split-phase API — ``HaloSchedule.update_start``/``update_finish``
  and ``DistMatrix.spmv(overlap=True)`` over the cached ``split_blocks()``
  partition of each local matrix into owned-column and halo-column halves;
* ``pipelined_pcg(overlap=True)`` and :func:`repro.dist.spmd_pipelined_pcg`
  agree with their non-overlapped counterparts (the split changes row
  summation *order*, so equality is to rounding, not bitwise);
* with a modeled link latency, overlapping local SpMV with in-flight halo
  traffic measurably reduces ``spmd.halo.wait`` self-time — the effect the
  split-phase API exists to buy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_fsai, pipelined_pcg
from repro.dist import DistMatrix, DistVector, RowPartition, spmd_pipelined_pcg
from repro.errors import ShapeError
from repro.instrument import tracing
from repro.matgen import paper_rhs, poisson2d
from repro.mpisim import CommTracker

RTOL = 1e-8


@pytest.fixture(scope="module")
def dist16():
    mat = poisson2d(16)
    part = RowPartition.from_matrix(mat, 4, seed=1)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=3), part)
    return mat, part, da, b


class TestSplitPhaseHalo:
    def test_update_start_finish_matches_update(self, dist16):
        _, _, da, b = dist16
        sched = da.schedule
        direct = sched.update(b.parts)
        pending = sched.update_start(b.parts)
        staged = sched.update_finish(pending)
        assert len(direct) == len(staged)
        for d, s in zip(direct, staged):
            np.testing.assert_array_equal(d, s)

    def test_split_blocks_partition_is_cached_and_complete(self, dist16):
        _, _, da, _ = dist16
        blocks = da.split_blocks()
        assert blocks is da.split_blocks()  # cached
        for lm, (a_ll, a_lh) in zip(da.locals, blocks):
            nnz = a_ll.nnz + (a_lh.nnz if a_lh is not None else 0)
            assert nnz == lm.csr.nnz  # every entry lands in exactly one half

    def test_overlapped_spmv_matches_legacy(self, dist16):
        mat, _, da, b = dist16
        legacy = da.spmv(b).to_global()
        overlapped = da.spmv(b, overlap=True).to_global()
        np.testing.assert_allclose(overlapped, legacy, rtol=1e-14, atol=1e-14)
        np.testing.assert_allclose(legacy, mat.spmv(b.to_global()), rtol=1e-12)

    def test_overlap_rejects_workspace(self, dist16):
        _, _, da, b = dist16
        with pytest.raises(ShapeError, match="workspace"):
            da.spmv(b, overlap=True, workspace=object())

    def test_overlap_fills_preallocated_out(self, dist16):
        _, _, da, b = dist16
        out = DistVector(da.partition, [np.empty_like(p) for p in b.parts])
        returned = da.spmv(b, overlap=True, out=out)
        assert returned is out
        np.testing.assert_allclose(
            out.to_global(), da.spmv(b).to_global(), rtol=1e-14, atol=1e-14
        )


class TestOverlappedPipelinedPcg:
    def test_bsp_overlap_parity(self, dist16):
        _, part, da, b = dist16
        pre = build_fsai(da.to_global(), part)
        base = pipelined_pcg(da, b, precond=pre.apply, rtol=RTOL)
        fused = pipelined_pcg(da, b, precond=pre.apply, rtol=RTOL, overlap=True)
        assert fused.converged
        assert abs(fused.iterations - base.iterations) <= 1
        np.testing.assert_allclose(
            fused.x.to_global(), base.x.to_global(), rtol=1e-6
        )

    @pytest.mark.parametrize("engine", ["threads", "events"])
    @pytest.mark.parametrize("overlap", [False, True])
    def test_spmd_matches_bsp(self, dist16, engine, overlap):
        mat, part, da, b = dist16
        pre = build_fsai(mat, part)
        bsp = pipelined_pcg(da, b, precond=pre.apply, rtol=RTOL)
        tracker = CommTracker()
        x, iters = spmd_pipelined_pcg(
            da, b, rtol=RTOL, precond_pair=(pre.g, pre.gt),
            tracker=tracker, overlap=overlap, engine=engine,
        )
        assert iters == bsp.iterations
        rhs = b.to_global()
        rel = np.linalg.norm(rhs - mat.spmv(x.to_global())) / np.linalg.norm(rhs)
        assert rel <= 10 * RTOL
        assert tracker.total_messages > 0

    def test_overlap_preserves_message_pattern(self, dist16):
        """Overlap reorders communication, it must not change it: same
        per-edge messages and bytes either way."""
        _, part, da, b = dist16
        pre = build_fsai(da.to_global(), part)
        snaps = []
        for overlap in (False, True):
            tracker = CommTracker()
            spmd_pipelined_pcg(
                da, b, rtol=RTOL, precond_pair=(pre.g, pre.gt),
                tracker=tracker, overlap=overlap,
            )
            snaps.append(tracker.snapshot())
        assert snaps[0] == snaps[1]


class TestOverlapHidesLatency:
    def test_halo_wait_drops_under_modeled_latency(self):
        """With a 1 ms link latency, posting receives early and computing
        the owned-column SpMV inside the latency window must cut aggregate
        ``spmd.halo.wait`` self-time versus the blocking exchange."""
        # per-rank work must dwarf the per-exchange latency for the hiding
        # to register: 16k rows/rank over a cheap contiguous partition
        mat = poisson2d(256)
        part = RowPartition.contiguous(mat.nrows, 4)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, seed=5), part)

        waits = {}
        for overlap in (False, True):
            with tracing() as (tracer, _):
                spmd_pipelined_pcg(
                    da, b, rtol=1e-10, max_iterations=10,
                    overlap=overlap, latency=1e-3,
                )
                waits[overlap] = tracer.total_seconds("spmd.halo.wait")
        assert waits[True] > 0  # the span fires on the overlapped path too
        assert waits[True] < 0.95 * waits[False]
