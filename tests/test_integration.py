"""Integration tests: full pipelines over the evaluation catalog.

These run the complete paper protocol (partition → FSAI/FSAIE/FSAIE-Comm →
PCG with random max-norm RHS, 8 orders of residual reduction) on a subset of
catalog matrices and assert the paper's aggregate claims hold in shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FilterSpec,
    PrecondOptions,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
    check_comm_invariance,
    imbalance_index,
    pcg,
)
from repro.dist import DistMatrix, DistVector, RowPartition, spmd_cg
from repro.matgen import (
    PAPER_RTOL,
    default_rank_count,
    get_case,
    paper_rhs,
    table1_cases,
)
from repro.mpisim import CommTracker
from repro.perfmodel import SKYLAKE, estimate_solver_time

# a cross-section of problem classes that solves quickly at catalog scale
SMOKE_SET = ["PFlow_742", "Fault_639", "thermal2", "ecology2", "qa8fm", "Dubcova2"]
OPTS = PrecondOptions(filter=FilterSpec(0.01, dynamic=True))


def solve_case(name, build, opts=OPTS):
    case = get_case(name)
    mat = case.build()
    part = RowPartition.from_matrix(mat, default_rank_count(mat.nnz), seed=case.case_id)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=case.case_id), part)
    pre = build(mat, part, opts)
    result = pcg(da, b, precond=pre.apply, rtol=PAPER_RTOL, max_iterations=20000)
    return mat, part, da, b, pre, result


class TestFullPipeline:
    @pytest.mark.parametrize("name", SMOKE_SET)
    def test_converges_with_all_preconditioners(self, name):
        for build in (build_fsai, build_fsaie, build_fsaie_comm):
            mat, _, _, b, pre, result = solve_case(name, build)
            assert result.converged, f"{name}/{pre.name}"
            # verify the residual against a from-scratch computation
            x = result.x.to_global()
            bg = b.to_global()
            rel = np.linalg.norm(mat.spmv(x) - bg) / np.linalg.norm(bg)
            assert rel <= PAPER_RTOL * 2

    @pytest.mark.parametrize("name", SMOKE_SET)
    def test_comm_invariance_on_catalog(self, name):
        case = get_case(name)
        mat = case.build()
        part = RowPartition.from_matrix(mat, default_rank_count(mat.nnz), seed=1)
        base = build_fsai(mat, part, OPTS)
        comm = build_fsaie_comm(mat, part, OPTS)
        assert check_comm_invariance(base, comm)
        assert comm.nnz >= base.nnz

    def test_aggregate_iteration_improvement(self):
        """Across problem classes, FSAIE-Comm reduces iterations vs FSAI on
        average (the paper's headline claim; per-matrix exceptions allowed)."""
        ratios = []
        for name in SMOKE_SET:
            _, _, _, _, _, res_fsai = solve_case(name, build_fsai)
            _, _, _, _, _, res_comm = solve_case(name, build_fsaie_comm)
            ratios.append(res_comm.iterations / max(res_fsai.iterations, 1))
        assert np.mean(ratios) < 1.0
        assert min(ratios) < 0.9  # at least one strong winner

    def test_fsaie_comm_beats_fsaie_at_one_rank_per_core(self):
        """§5.3.2: with many small processes FSAIE-Comm's halo additions
        matter most.  At catalog scale we assert non-inferiority on average."""
        diffs = []
        for name in ("PFlow_742", "ecology2", "thermal2"):
            case = get_case(name)
            mat = case.build()
            part = RowPartition.from_matrix(mat, 8, seed=2)
            da = DistMatrix.from_global(mat, part)
            b = DistVector.from_global(paper_rhs(mat, 7), part)
            it = {}
            for build in (build_fsaie, build_fsaie_comm):
                pre = build(mat, part, OPTS)
                it[pre.name] = pcg(da, b, precond=pre.apply, max_iterations=20000).iterations
            diffs.append(it["FSAIE"] - it["FSAIE-Comm"])
        assert np.mean(diffs) >= 0

    def test_modeled_time_improves_with_extension(self):
        """Iterations drop more than per-iteration cost grows ⇒ modeled
        time-to-solution improves (Table 1's shape), checked on a strong
        gainer."""
        name = "ecology2"
        _, _, da, _, pre_f, res_f = solve_case(name, build_fsai)
        _, _, da2, _, pre_c, res_c = solve_case(name, build_fsaie_comm)
        # 8 threads per MPI process is the paper's default configuration
        # (§5.2) and the regime where cache-resident extension entries are
        # nearly free relative to communication and synchronisation.
        t_fsai = estimate_solver_time(
            res_f.iterations, da, pre_f, SKYLAKE, threads_per_process=8
        )
        t_comm = estimate_solver_time(
            res_c.iterations, da2, pre_c, SKYLAKE, threads_per_process=8
        )
        assert t_comm < t_fsai

    def test_spmd_runtime_full_solve_agrees(self):
        """The whole preconditioned solve on real message passing matches the
        BSP result — iteration for iteration."""
        case = get_case("qa8fm")
        mat = case.build()
        part = RowPartition.from_matrix(mat, 4, seed=3)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, 5), part)
        pre = build_fsaie_comm(mat, part, OPTS)
        bsp = pcg(da, b, precond=pre.apply, rtol=PAPER_RTOL)
        x_spmd, iters = spmd_cg(
            da, b, rtol=PAPER_RTOL, precond_pair=(pre.g, pre.gt)
        )
        assert iters == bsp.iterations
        assert np.allclose(x_spmd.to_global(), bsp.x.to_global(), atol=1e-9)

    def test_halo_traffic_constant_across_solve(self):
        """Communication volume of the preconditioner application is
        identical between FSAI and FSAIE-Comm over an entire solve."""
        case = get_case("thermal2")
        mat = case.build()
        part = RowPartition.from_matrix(mat, 4, seed=0)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, 1), part)
        traffic = {}
        iters = {}
        for build in (build_fsai, build_fsaie_comm):
            pre = build(mat, part, OPTS)
            tracker = CommTracker()
            res = pcg(da, b, precond=pre.apply, tracker=tracker, max_iterations=20000)
            traffic[pre.name] = tracker.total_bytes / max(res.iterations, 1)
            iters[pre.name] = res.iterations
        # same bytes per iteration although patterns differ
        assert traffic["FSAI"] == pytest.approx(traffic["FSAIE-Comm"], rel=0.02)

    def test_dynamic_filter_case_study(self):
        """§5.3.3-style check: when extensions imbalance the factor, the
        dynamic filter produces a better (or equal) imbalance index than the
        static filter."""
        case = get_case("consph")
        mat = case.build()
        part = RowPartition.from_matrix(mat, 6, seed=17)
        static = build_fsaie_comm(
            mat, part, PrecondOptions(filter=FilterSpec(0.01, dynamic=False))
        )
        dynamic = build_fsaie_comm(
            mat, part, PrecondOptions(filter=FilterSpec(0.01, dynamic=True))
        )
        ii_static = imbalance_index(static.nnz_per_rank())
        ii_dynamic = imbalance_index(dynamic.nnz_per_rank())
        assert ii_dynamic >= ii_static - 1e-12


class TestCatalogBreadth:
    @pytest.mark.parametrize("case", table1_cases(), ids=lambda c: c.name)
    def test_every_catalog_matrix_builds_fsaie_comm(self, case):
        """Broad but cheap: the full pipeline (no solve) on all 39 matrices."""
        mat = case.build()
        part = RowPartition.from_matrix(mat, 4, seed=case.case_id)
        base = build_fsai(mat, part)
        comm = build_fsaie_comm(mat, part, OPTS)
        assert check_comm_invariance(base, comm)
        assert comm.nnz >= base.nnz
