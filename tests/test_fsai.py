"""Unit tests for the FSAI factor computation (Alg. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FSAIOptions,
    SetupOptions,
    compute_g_values,
    compute_g_values_per_row,
    fsai_factor,
    fsai_pattern,
)
from repro.errors import NotSPDError, ShapeError
from repro.matgen import poisson2d
from repro.sparse import CSRMatrix, SparsityPattern

from conftest import random_sparse


def condition_number(dense: np.ndarray) -> float:
    w = np.linalg.eigvalsh(dense)
    return w[-1] / w[0]


class TestPattern:
    def test_default_pattern_is_lower_of_a(self, small_spd):
        pat = fsai_pattern(small_spd)
        lower = SparsityPattern.from_csr(small_spd.extract_lower())
        assert pat == lower.with_diagonal()

    def test_level2_pattern_is_superset(self, small_spd):
        p1 = fsai_pattern(small_spd, FSAIOptions(level=1))
        p2 = fsai_pattern(small_spd, FSAIOptions(level=2))
        assert p1.issubset(p2)

    def test_threshold_sparsifies(self, poisson16):
        dense_pat = fsai_pattern(poisson16, FSAIOptions(level=2))
        sparse_pat = fsai_pattern(poisson16, FSAIOptions(level=2, threshold=0.9))
        assert sparse_pat.nnz < dense_pat.nnz

    def test_pattern_is_lower_triangular(self, small_spd):
        pat = fsai_pattern(small_spd, FSAIOptions(level=2))
        for i in range(pat.nrows):
            row = pat.row(i)
            assert row.size >= 1
            assert row[-1] == i  # diagonal last
            assert np.all(row <= i)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            fsai_pattern(random_sparse(rng, 3, 5))

    def test_options_validation(self):
        with pytest.raises(ValueError):
            FSAIOptions(threshold=-1.0)
        with pytest.raises(ValueError):
            FSAIOptions(level=0)
        with pytest.raises(ValueError):
            FSAIOptions(post_filter=-0.1)


class TestValues:
    def test_unit_diagonal_of_gagt(self, small_spd):
        g = fsai_factor(small_spd)
        dense = g.to_dense() @ small_spd.to_dense() @ g.to_dense().T
        assert np.allclose(np.diag(dense), 1.0)

    def test_factor_is_lower_triangular_with_positive_diagonal(self, small_spd):
        g = fsai_factor(small_spd)
        dense = g.to_dense()
        assert np.allclose(dense, np.tril(dense))
        assert np.all(np.diag(dense) > 0)

    def test_improves_conditioning(self, poisson16):
        a_dense = poisson16.to_dense()
        g = fsai_factor(poisson16)
        precond = g.to_dense() @ a_dense @ g.to_dense().T
        assert condition_number(precond) < condition_number(a_dense)

    def test_level2_improves_over_level1(self, poisson16):
        a_dense = poisson16.to_dense()
        c = []
        for level in (1, 2):
            g = fsai_factor(poisson16, FSAIOptions(level=level)).to_dense()
            c.append(condition_number(g @ a_dense @ g.T))
        assert c[1] < c[0]

    def test_diagonal_matrix_gives_exact_inverse_sqrt(self):
        diag = np.array([4.0, 9.0, 16.0])
        mat = CSRMatrix.from_dense(np.diag(diag))
        g = fsai_factor(mat)
        assert np.allclose(g.to_dense(), np.diag(1.0 / np.sqrt(diag)))

    def test_full_pattern_reproduces_exact_inverse_factor(self, small_spd):
        """With a full lower-triangular pattern, G A Gᵀ must equal I."""
        n = small_spd.nrows
        full = SparsityPattern.from_rows(
            (n, n), [list(range(i + 1)) for i in range(n)]
        )
        g = compute_g_values(small_spd, full).to_dense()
        assert np.allclose(g @ small_spd.to_dense() @ g.T, np.eye(n), atol=1e-8)

    def test_richer_pattern_lowers_frobenius_objective(self, poisson16):
        a_dense = poisson16.to_dense()
        chol = np.linalg.cholesky(a_dense)
        errs = []
        for level in (1, 2):
            g = fsai_factor(poisson16, FSAIOptions(level=level)).to_dense()
            errs.append(np.linalg.norm(np.eye(poisson16.nrows) - g @ chol))
        assert errs[1] < errs[0]

    def test_post_filter_reduces_nnz(self, poisson16):
        g_full = fsai_factor(poisson16, FSAIOptions(level=2))
        g_filt = fsai_factor(poisson16, FSAIOptions(level=2, post_filter=0.2))
        assert g_filt.nnz < g_full.nnz
        # still a valid factor: unit diagonal of G A Gᵀ
        dense = g_filt.to_dense() @ poisson16.to_dense() @ g_filt.to_dense().T
        assert np.allclose(np.diag(dense), 1.0)

    def test_pattern_shape_mismatch(self, small_spd):
        with pytest.raises(ShapeError):
            compute_g_values(small_spd, SparsityPattern.identity(small_spd.nrows + 1))

    def test_pattern_missing_diagonal_rejected(self, small_spd):
        n = small_spd.nrows
        rows = [[i] for i in range(n)]
        rows[3] = []  # no diagonal on row 3
        pat = SparsityPattern.from_rows((n, n), rows)
        with pytest.raises(ShapeError):
            compute_g_values(small_spd, pat)

    def test_non_lower_pattern_rejected(self, small_spd):
        n = small_spd.nrows
        rows = [[i] for i in range(n)]
        rows[0] = [0, 5]  # upper entry
        pat = SparsityPattern.from_rows((n, n), rows)
        with pytest.raises(ShapeError):
            compute_g_values(small_spd, pat)

    def test_indefinite_matrix_raises(self):
        dense = np.array([[1.0, 4.0], [4.0, 1.0]])
        mat = CSRMatrix.from_dense(dense)
        pat = SparsityPattern.from_rows((2, 2), [[0], [0, 1]])
        with pytest.raises(NotSPDError):
            compute_g_values(mat, pat)

    def test_permutation_invariance_of_diagonal_scaling(self, rng):
        """Scaling A by a positive diagonal must not change GAGᵀ."""
        mat = poisson2d(6)
        scale = rng.uniform(0.5, 2.0, mat.nrows)
        d = np.diag(scale)
        scaled = CSRMatrix.from_dense(d @ mat.to_dense() @ d)
        g1 = fsai_factor(mat).to_dense()
        g2 = fsai_factor(scaled).to_dense()
        m1 = g1 @ mat.to_dense() @ g1.T
        m2 = g2 @ scaled.to_dense() @ g2.T
        assert np.allclose(m1, m2, atol=1e-10)


class TestBatchedEquivalence:
    """Batched group solves vs the per-row reference loop."""

    @pytest.mark.parametrize("level", [1, 2])
    def test_structure_identical_and_values_close(self, poisson16, level):
        pattern = fsai_pattern(poisson16, FSAIOptions(level=level))
        per_row = compute_g_values_per_row(poisson16, pattern)
        batched = compute_g_values(poisson16, pattern)
        assert per_row.nnz == batched.nnz
        assert np.array_equal(per_row.indptr, batched.indptr)
        assert np.array_equal(per_row.indices, batched.indices)
        assert np.max(np.abs(per_row.data - batched.data)) <= 1e-12

    def test_small_spd_values_close(self, small_spd):
        pattern = fsai_pattern(small_spd, FSAIOptions(level=2))
        per_row = compute_g_values_per_row(small_spd, pattern)
        batched = compute_g_values(small_spd, pattern)
        assert np.allclose(per_row.data, batched.data, rtol=0, atol=1e-12)

    def test_singleton_groups(self):
        # diagonal matrix: every pattern row is the lone size-1 group member
        mat = CSRMatrix.from_dense(np.diag([4.0, 9.0, 16.0]))
        pattern = fsai_pattern(mat)
        g = compute_g_values(mat, pattern)
        ref = compute_g_values_per_row(mat, pattern)
        assert np.array_equal(g.data, ref.data)
        assert np.allclose(g.data, [0.5, 1.0 / 3.0, 0.25])

    def test_mixed_group_sizes(self, rng):
        # random SPD: row pattern sizes vary, including singleton groups
        mat = small_spd_like(rng, 14)
        pattern = fsai_pattern(mat, FSAIOptions(level=2))
        sizes = np.diff(pattern.indptr)
        assert np.unique(sizes).size > 1  # the case under test
        per_row = compute_g_values_per_row(mat, pattern)
        batched = compute_g_values(mat, pattern)
        assert np.max(np.abs(per_row.data - batched.data)) <= 1e-12

    def test_fp32_setup_close_to_fp64(self, poisson16):
        pattern = fsai_pattern(poisson16)
        g64 = compute_g_values(poisson16, pattern)
        g32 = compute_g_values(
            poisson16, pattern, setup=SetupOptions(dtype="float32")
        )
        assert g32.data.dtype == np.float64  # storage stays float64
        assert np.allclose(g64.data, g32.data, rtol=1e-4, atol=1e-5)

    def test_fp32_batched_matches_fp32_per_row(self, poisson16):
        pattern = fsai_pattern(poisson16)
        per_row = compute_g_values_per_row(poisson16, pattern, dtype=np.float32)
        batched = compute_g_values(
            poisson16, pattern, setup=SetupOptions(dtype="float32")
        )
        assert np.allclose(per_row.data, batched.data, rtol=1e-5, atol=1e-6)

    def test_batched_false_routes_to_reference(self, poisson16):
        pattern = fsai_pattern(poisson16)
        via_setup = compute_g_values(
            poisson16, pattern, setup=SetupOptions(batched=False)
        )
        ref = compute_g_values_per_row(poisson16, pattern)
        assert np.array_equal(via_setup.data, ref.data)

    def test_bad_setup_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            SetupOptions(dtype="float16")

    def test_batched_metrics_counters(self, poisson16):
        from repro.instrument import NULL_TRACER, tracing

        pattern = fsai_pattern(poisson16)
        with tracing(NULL_TRACER) as (_, metrics):
            compute_g_values(poisson16, pattern)
            assert (metrics.value("fsai.batched_groups") or 0) >= 1
            assert metrics.value("fsai.batched_rows") == poisson16.nrows

    def test_halo_schedules_invariant_across_setup_paths(self):
        from repro.core.precond import PrecondOptions, build_fsai
        from repro.dist import RowPartition
        from repro.observe import audit_preconditioners

        mat = poisson2d(10)
        part = RowPartition.contiguous(mat.nrows, 4)
        batched = build_fsai(mat, part)
        per_row = build_fsai(
            mat, part, PrecondOptions(setup=SetupOptions(batched=False))
        )
        audit = audit_preconditioners(batched, per_row)
        assert audit.invariant
        for sched_b, sched_p in ((batched.g.schedule, per_row.g.schedule),
                                 (batched.gt.schedule, per_row.gt.schedule)):
            assert sched_b == sched_p
            for cb, cp in zip(sched_b.ext_cols, sched_p.ext_cols):
                assert cb.tobytes() == cp.tobytes()


def small_spd_like(rng, n: int) -> CSRMatrix:
    """Sparse SPD test matrix with irregular row pattern sizes."""
    base = random_sparse(rng, n, n, density=0.25).to_dense()
    sym = (base + base.T) / 2
    np.fill_diagonal(sym, np.abs(sym).sum(axis=1) + 1.0)
    return CSRMatrix.from_dense(sym)
