"""Property-based tests for the runtime substrates: collectives, partitions,
halo exchange, cache simulation."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim import CacheConfig, simulate_misses
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.matgen import poisson2d
from repro.mpisim import MAX, MIN, SUM, run_spmd
from repro.partition import graph_from_matrix, partition_matrix

SETTINGS = settings(max_examples=15, deadline=None)


class TestCollectiveProperties:
    @SETTINGS
    @given(st.integers(1, 9), st.integers(0, 2**31 - 1))
    def test_allreduce_equals_sequential_sum(self, size, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(-1000, 1000, size).tolist()

        def prog(comm):
            return comm.allreduce(values[comm.rank], SUM)

        assert run_spmd(prog, size, timeout=15) == [sum(values)] * size

    @SETTINGS
    @given(st.integers(2, 8), st.integers(0, 2**31 - 1))
    def test_minmax_consistency(self, size, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(size).tolist()

        def prog(comm):
            return (
                comm.allreduce(values[comm.rank], MAX),
                comm.allreduce(values[comm.rank], MIN),
            )

        for mx, mn in run_spmd(prog, size, timeout=15):
            assert mx == max(values)
            assert mn == min(values)

    @SETTINGS
    @given(st.integers(1, 8), st.integers(0, 7))
    def test_bcast_from_any_root(self, size, root):
        root = root % size

        def prog(comm):
            return comm.bcast(("payload", root) if comm.rank == root else None, root)

        assert run_spmd(prog, size, timeout=15) == [("payload", root)] * size


class TestPartitionProperties:
    @SETTINGS
    @given(st.integers(6, 14), st.integers(2, 6), st.integers(0, 50))
    def test_partition_covers_all_vertices_balanced(self, n, nparts, seed):
        mat = poisson2d(n)
        part = partition_matrix(mat, nparts, seed=seed)
        counts = np.bincount(part, minlength=nparts)
        assert counts.sum() == mat.nrows
        assert counts.min() > 0
        assert counts.max() / counts.mean() <= 1.3

    @SETTINGS
    @given(st.integers(8, 14), st.integers(2, 5), st.integers(0, 50))
    def test_partition_cut_is_reasonable(self, n, nparts, seed):
        mat = poisson2d(n)
        g = graph_from_matrix(mat)
        part = partition_matrix(mat, nparts, seed=seed)
        # a sane multilevel partition of a grid cuts far less than half of
        # all edges
        assert g.edge_cut(part) < g.num_edges / 2


class TestDistProperties:
    @SETTINGS
    @given(st.integers(6, 14), st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_distributed_spmv_equals_serial(self, n, nparts, seed):
        mat = poisson2d(n)
        part = RowPartition.from_matrix(mat, nparts, seed=seed % 100)
        da = DistMatrix.from_global(mat, part)
        x = np.random.default_rng(seed).standard_normal(mat.nrows)
        got = da.spmv(DistVector.from_global(x, part)).to_global()
        assert np.allclose(got, mat.spmv(x))

    @SETTINGS
    @given(st.integers(6, 12), st.integers(2, 4), st.integers(0, 2**31 - 1))
    def test_halo_volume_counts_off_rank_couplings(self, n, nparts, seed):
        mat = poisson2d(n)
        part = RowPartition.from_matrix(mat, nparts, seed=seed % 100)
        da = DistMatrix.from_global(mat, part)
        # each rank's halo size equals its distinct off-rank columns
        for p, lm in enumerate(da.locals):
            rows = part.global_ids[p]
            cols = set()
            for g in rows:
                lo, hi = mat.indptr[g], mat.indptr[g + 1]
                for c in mat.indices[lo:hi]:
                    if part.owner[c] != p:
                        cols.add(int(c))
            assert lm.n_halo == len(cols)


class TestCacheProperties:
    @SETTINGS
    @given(
        st.lists(st.integers(0, 200), min_size=1, max_size=400),
        st.sampled_from([(1024, 64, 2), (4096, 64, 8), (2048, 256, 4)]),
    )
    def test_miss_count_bounds(self, stream, geometry):
        size, line, assoc = geometry
        cfg = CacheConfig(size, line, assoc)
        arr = np.asarray(stream, dtype=np.int64)
        misses = simulate_misses(arr, cfg)
        assert np.unique(arr).size <= misses <= arr.size

    @SETTINGS
    @given(st.lists(st.integers(0, 50), min_size=1, max_size=200))
    def test_infinite_cache_only_cold_misses(self, stream):
        # cache big enough to hold every line: misses == distinct lines
        cfg = CacheConfig(64 * 1024, 64, 16)
        arr = np.asarray(stream, dtype=np.int64)
        assert simulate_misses(arr, cfg) == np.unique(arr).size

    @SETTINGS
    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=300))
    def test_determinism(self, stream):
        cfg = CacheConfig(1024, 64, 2)
        arr = np.asarray(stream, dtype=np.int64)
        assert simulate_misses(arr, cfg) == simulate_misses(arr, cfg)
