"""Unit tests for the graph type and the multilevel partitioner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.matgen import poisson2d
from repro.partition import (
    Graph,
    balanced_chunks,
    bisect,
    block_partition_2d,
    graph_from_matrix,
    graph_from_pattern,
    partition_graph,
    partition_matrix,
    strip_partition,
)
from repro.partition.coarsen import coarsen_once, contract, heavy_edge_matching
from repro.partition.refine import bisection_balance, fm_refine
from repro.sparse import SparsityPattern

from conftest import random_sparse


def path_graph(n: int) -> Graph:
    """0—1—2—…—(n−1)."""
    xadj = [0]
    adj = []
    for v in range(n):
        nbrs = [u for u in (v - 1, v + 1) if 0 <= u < n]
        adj.extend(nbrs)
        xadj.append(len(adj))
    return Graph(xadj, adj)


class TestGraph:
    def test_from_pattern_symmetrizes_and_drops_diagonal(self, rng):
        mat = random_sparse(rng, 10, 10)
        g = graph_from_matrix(mat)
        assert g.num_vertices == 10
        rows = np.repeat(np.arange(10), np.diff(g.xadj))
        assert not np.any(rows == g.adjncy)  # no self loops
        # symmetric adjacency
        edges = set(zip(rows.tolist(), g.adjncy.tolist()))
        assert all((b, a) in edges for a, b in edges)

    def test_rejects_rectangular(self, rng):
        with pytest.raises(PartitionError):
            graph_from_pattern(SparsityPattern.from_csr(random_sparse(rng, 3, 5)))

    def test_edge_cut(self):
        g = path_graph(4)
        assert g.edge_cut(np.array([0, 0, 1, 1])) == 1
        assert g.edge_cut(np.array([0, 1, 0, 1])) == 3

    def test_rejects_self_loop(self):
        with pytest.raises(PartitionError):
            Graph([0, 1], [0])

    def test_degree_and_neighbours(self):
        g = path_graph(3)
        assert g.degree(0) == 1
        assert g.degree(1) == 2
        assert g.neighbours(1).tolist() == [0, 2]


class TestCoarsening:
    def test_matching_is_valid(self):
        g = graph_from_matrix(poisson2d(8))
        match = heavy_edge_matching(g, np.random.default_rng(0))
        for v in range(g.num_vertices):
            u = match[v]
            assert match[u] == v  # symmetric
            if u != v:
                assert u in g.neighbours(v)

    def test_contract_preserves_weight(self):
        g = graph_from_matrix(poisson2d(8))
        match = heavy_edge_matching(g, np.random.default_rng(0))
        coarse, cmap = contract(g, match)
        assert coarse.total_vertex_weight() == g.total_vertex_weight()
        assert cmap.min() == 0 and cmap.max() == coarse.num_vertices - 1

    def test_contract_halves_path(self):
        g = path_graph(8)
        match = heavy_edge_matching(g, np.random.default_rng(0))
        coarse, _ = contract(g, match)
        assert coarse.num_vertices < 8

    def test_coarsen_once_stops_on_edgeless_graph(self):
        g = Graph([0, 0, 0], [])  # two isolated vertices
        assert coarsen_once(g, np.random.default_rng(0)) is None


class TestRefinement:
    def test_fm_improves_bad_bisection(self):
        g = graph_from_matrix(poisson2d(10))
        rng = np.random.default_rng(0)
        bad = rng.integers(0, 2, g.num_vertices)  # random: terrible cut
        # make it balanced-ish before refining
        refined = fm_refine(g, bad)
        assert g.edge_cut(refined) <= g.edge_cut(bad)

    def test_fm_keeps_balance(self):
        g = graph_from_matrix(poisson2d(10))
        part = strip_partition(100, 2)
        refined = fm_refine(g, part, max_imbalance=1.05)
        assert bisection_balance(g, refined) <= 1.06

    def test_balance_metric(self):
        g = path_graph(4)
        assert bisection_balance(g, np.array([0, 0, 1, 1])) == 1.0
        assert bisection_balance(g, np.array([0, 0, 0, 1])) == pytest.approx(1.5)


class TestMultilevel:
    def test_bisection_of_grid_is_near_optimal(self):
        n = 16
        g = graph_from_matrix(poisson2d(n))
        part = bisect(g, rng=np.random.default_rng(1))
        # optimal cut is n; accept a small slack
        assert g.edge_cut(part) <= 2 * n
        counts = np.bincount(part)
        assert counts.max() <= 1.06 * g.num_vertices / 2

    @pytest.mark.parametrize("nparts", [1, 2, 3, 5, 8])
    def test_partition_matrix_balanced(self, nparts):
        mat = poisson2d(14)
        part = partition_matrix(mat, nparts, seed=3)
        counts = np.bincount(part, minlength=nparts)
        assert counts.min() > 0
        assert counts.max() / counts.mean() <= 1.25
        assert set(np.unique(part)) == set(range(nparts))

    def test_partition_graph_rejects_bad_counts(self):
        g = path_graph(4)
        with pytest.raises(PartitionError):
            partition_graph(g, 0)
        with pytest.raises(PartitionError):
            partition_graph(g, 5)

    def test_partition_deterministic_for_seed(self):
        mat = poisson2d(12)
        a = partition_matrix(mat, 4, seed=9)
        b = partition_matrix(mat, 4, seed=9)
        assert np.array_equal(a, b)

    def test_partition_cut_beats_random(self):
        mat = poisson2d(16)
        g = graph_from_matrix(mat)
        part = partition_matrix(mat, 4, seed=0)
        rng = np.random.default_rng(0)
        random_part = rng.integers(0, 4, g.num_vertices)
        assert g.edge_cut(part) < g.edge_cut(random_part) / 3


class TestGeometric:
    def test_balanced_chunks(self):
        assert balanced_chunks(10, 3).tolist() == [4, 3, 3]
        assert balanced_chunks(9, 3).tolist() == [3, 3, 3]
        with pytest.raises(PartitionError):
            balanced_chunks(2, 3)

    def test_strip_partition(self):
        part = strip_partition(10, 3)
        assert part.tolist() == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]

    def test_block_partition_2d_shape(self):
        part = block_partition_2d(4, 6, 2, 3)
        assert part.size == 24
        counts = np.bincount(part, minlength=6)
        assert counts.tolist() == [4] * 6

    def test_block_partition_2d_contiguous_blocks(self):
        part = block_partition_2d(4, 4, 2, 2).reshape(4, 4)
        assert part[0, 0] == part[1, 1]
        assert part[0, 0] != part[3, 3]

    def test_block_partition_rejects_oversubscription(self):
        with pytest.raises(PartitionError):
            block_partition_2d(2, 2, 3, 1)


class TestWeightedPartitioning:
    def _skewed_matrix(self):
        """Half the rows sparse (circuit), half dense (banded), connected."""
        from repro.matgen import banded_spd, circuit_laplacian
        from repro.sparse import CSRMatrix

        a = circuit_laplacian(300, avg_degree=3, seed=2)
        b = banded_spd(300, 20, seed=3)
        ra, ca, va = a.to_coo()
        rb, cb, vb = b.to_coo()
        rows = np.concatenate([ra, rb + 300, [299, 300, 299, 300]])
        cols = np.concatenate([ca, cb + 300, [300, 299, 299, 300]])
        vals = np.concatenate([va, vb, [-0.1, -0.1, 0.2, 0.2]])
        return CSRMatrix.from_coo((600, 600), rows, cols, vals)

    def test_nnz_weighting_balances_work(self):
        mat = self._skewed_matrix()
        rows_part = partition_matrix(mat, 4, seed=1, weight_by_nnz=False)
        nnz_part = partition_matrix(mat, 4, seed=1, weight_by_nnz=True)

        def nnz_imbalance(part):
            per = np.array(
                [mat.row_nnz()[part == p].sum() for p in range(4)], dtype=float
            )
            return per.max() / per.mean()

        assert nnz_imbalance(nnz_part) < nnz_imbalance(rows_part)
        assert nnz_imbalance(nnz_part) < 1.3

    def test_weighted_graph_total(self):
        mat = self._skewed_matrix()
        g = graph_from_matrix(mat, weight_by_nnz=True)
        assert g.total_vertex_weight() == mat.nnz

    def test_row_partition_from_matrix_weighted(self):
        from repro.dist import RowPartition

        mat = self._skewed_matrix()
        part = RowPartition.from_matrix(mat, 3, seed=0, weight_by_nnz=True)
        per = np.array(
            [mat.row_nnz()[part.global_ids[p]].sum() for p in range(3)], dtype=float
        )
        assert per.max() / per.mean() < 1.3
