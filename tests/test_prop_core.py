"""Property-based tests for the FSAI core: extension, filtering, solver.

These encode the paper's invariants over randomly generated SPD matrices and
partitions, not just the fixed fixtures of the unit tests.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExtensionMode,
    FilterSpec,
    PrecondOptions,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
    check_comm_invariance,
    dynamic_filter_for_rank,
    extend_dist_pattern,
    fsai_factor,
    fsai_pattern,
    pcg,
)
from repro.dist import DistMatrix, DistVector, HaloSchedule, RowPartition
from repro.matgen import paper_rhs, poisson2d
from repro.sparse import CSRMatrix

SETTINGS = settings(max_examples=15, deadline=None)


@st.composite
def random_spd(draw, max_dim=24):
    n = draw(st.integers(6, max_dim))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(0.05, 0.4))
    base = rng.standard_normal((n, n))
    base[rng.random((n, n)) > density] = 0.0
    dense = base @ base.T + n * np.eye(n)
    return CSRMatrix.from_dense(dense, tol=1e-12)


@st.composite
def partitioned_grid(draw):
    n = draw(st.integers(8, 16))
    nparts = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 100))
    mat = poisson2d(n)
    part = RowPartition.from_matrix(mat, nparts, seed=seed)
    return mat, part


class TestFSAIProperties:
    @SETTINGS
    @given(random_spd())
    def test_unit_diagonal_of_gagt(self, mat):
        g = fsai_factor(mat).to_dense()
        m = g @ mat.to_dense() @ g.T
        assert np.allclose(np.diag(m), 1.0, atol=1e-6)

    @SETTINGS
    @given(random_spd())
    def test_preconditioned_system_positive_definite(self, mat):
        g = fsai_factor(mat).to_dense()
        m = g @ mat.to_dense() @ g.T
        assert np.linalg.eigvalsh(m).min() > 0

    @SETTINGS
    @given(random_spd(max_dim=16), st.integers(0, 2**31 - 1))
    def test_pcg_with_fsai_converges(self, mat, seed):
        part = RowPartition.contiguous(mat.nrows, 2)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, seed), part)
        pre = build_fsai(mat, part)
        result = pcg(da, b, precond=pre.apply, rtol=1e-8, max_iterations=2000)
        assert result.converged


class TestExtensionProperties:
    @SETTINGS
    @given(partitioned_grid(), st.sampled_from([64, 128, 256]))
    def test_comm_invariance_holds_for_any_partition(self, grid, line_bytes):
        mat, part = grid
        base = fsai_pattern(mat)
        dist = DistMatrix.from_global(base.to_csr(), part)
        for mode in (ExtensionMode.LOCAL, ExtensionMode.COMM):
            exts = extend_dist_pattern(dist, line_bytes, mode)
            rows = np.concatenate([e.rows for e in exts])
            cols = np.concatenate([e.cols for e in exts])
            if rows.size == 0:
                continue
            from repro.core.precond import _union_with_entries

            ext_pat = _union_with_entries(base, rows, cols)
            assert base.issubset(ext_pat)
            assert HaloSchedule.from_pattern(ext_pat, part) == HaloSchedule.from_pattern(base, part)
            assert HaloSchedule.from_pattern(
                ext_pat.transpose(), part
            ) == HaloSchedule.from_pattern(base.transpose(), part)

    @SETTINGS
    @given(partitioned_grid())
    def test_end_to_end_invariance_and_convergence(self, grid):
        mat, part = grid
        opts = PrecondOptions(filter=FilterSpec(0.01, dynamic=True))
        base = build_fsai(mat, part, opts)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, 0), part)
        base_res = pcg(da, b, precond=base.apply, max_iterations=3000)
        for build in (build_fsaie, build_fsaie_comm):
            ext = build(mat, part, opts)
            assert check_comm_invariance(base, ext)
            res = pcg(da, b, precond=ext.apply, max_iterations=3000)
            assert res.converged
            # pattern extension never blows up the iteration count
            assert res.iterations <= base_res.iterations * 1.5 + 5


class TestFilteringProperties:
    @SETTINGS
    @given(
        st.integers(0, 2**31 - 1),
        st.integers(10, 5000),
        st.floats(0.001, 0.2),
    )
    def test_dynamic_filter_never_below_initial(self, seed, n_ext, init):
        rng = np.random.default_rng(seed)
        ratios = rng.uniform(0, 1, n_ext)
        f = dynamic_filter_for_rank(100, ratios, init, average_count=120.0)
        assert f >= init

    @SETTINGS
    @given(st.integers(0, 2**31 - 1), st.integers(1, 8))
    def test_dynamic_filter_reduces_max_load(self, seed, nparts):
        from repro.core import compute_dynamic_filters
        from repro.core.filtering import static_filter_counts

        rng = np.random.default_rng(seed)
        ratios = [
            rng.uniform(0, 1, int(rng.integers(10, 4000))) for _ in range(nparts)
        ]
        base = rng.integers(50, 200, nparts)
        spec = FilterSpec(0.01, dynamic=True)
        filters = compute_dynamic_filters(base, ratios, spec)
        before = static_filter_counts(base, ratios, 0.01)
        after = np.array(
            [
                int(b) + int(np.count_nonzero(r > f))
                for b, r, f in zip(base, ratios, filters)
            ]
        )
        assert after.max() <= before.max()
        assert np.all(after <= before)
