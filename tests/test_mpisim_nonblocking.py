"""Unit tests for nonblocking point-to-point operations (isend/irecv)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommError
from repro.mpisim import Request, run_spmd, waitall


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(5, 1)
                done, _ = req.test()
                assert done
                assert req.wait() is None
                return True
            return comm.recv(0)

        assert run_spmd(prog, 2, timeout=5) == [True, 5]

    def test_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(3.0), 1, tag=4)
                return None
            req = comm.irecv(0, tag=4)
            return req.wait().tolist()

        assert run_spmd(prog, 2, timeout=5)[1] == [0.0, 1.0, 2.0]

    def test_irecv_test_polls(self):
        def prog(comm):
            if comm.rank == 0:
                got = []
                req = comm.irecv(1)
                while True:
                    done, value = req.test()
                    if done:
                        got.append(value)
                        break
                return got
            comm.send("payload", 0)
            return None

        assert run_spmd(prog, 2, timeout=5)[0] == ["payload"]

    def test_wait_is_idempotent(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, 1)
                return None
            req = comm.irecv(0)
            return (req.wait(), req.wait())  # second wait returns cached value

        assert run_spmd(prog, 2, timeout=5)[1] == (7, 7)

    def test_waitall_pairwise_exchange(self):
        def prog(comm):
            for dst in range(comm.size):
                if dst != comm.rank:
                    comm.isend(comm.rank * 10, dst)
            reqs = [
                comm.irecv(src) for src in range(comm.size) if src != comm.rank
            ]
            return sorted(waitall(reqs))

        results = run_spmd(prog, 4, timeout=10)
        for r, got in enumerate(results):
            assert got == sorted(10 * s for s in range(4) if s != r)

    def test_irecv_bad_peer(self):
        def prog(comm):
            comm.irecv(99)

        with pytest.raises(CommError):
            run_spmd(prog, 2, timeout=5)

    def test_standalone_completed_request(self):
        req = Request(completed=True, value=42)
        assert req.test() == (True, 42)
        assert req.wait() == 42
