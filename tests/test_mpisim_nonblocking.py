"""Unit tests for nonblocking point-to-point operations (isend/irecv)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.errors import CommError
from repro.instrument import tracing
from repro.mpisim import CommTracker, Request, run_spmd, waitall, waitany


class TestNonblocking:
    def test_isend_completes_immediately(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend(5, 1)
                done, _ = req.test()
                assert done
                assert req.wait() is None
                return True
            return comm.recv(0)

        assert run_spmd(prog, 2, timeout=5) == [True, 5]

    def test_irecv_wait(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(np.arange(3.0), 1, tag=4)
                return None
            req = comm.irecv(0, tag=4)
            return req.wait().tolist()

        assert run_spmd(prog, 2, timeout=5)[1] == [0.0, 1.0, 2.0]

    def test_irecv_test_polls(self):
        def prog(comm):
            if comm.rank == 0:
                got = []
                req = comm.irecv(1)
                while True:
                    done, value = req.test()
                    if done:
                        got.append(value)
                        break
                return got
            comm.send("payload", 0)
            return None

        assert run_spmd(prog, 2, timeout=5)[0] == ["payload"]

    def test_wait_is_idempotent(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(7, 1)
                return None
            req = comm.irecv(0)
            return (req.wait(), req.wait())  # second wait returns cached value

        assert run_spmd(prog, 2, timeout=5)[1] == (7, 7)

    def test_waitall_pairwise_exchange(self):
        def prog(comm):
            for dst in range(comm.size):
                if dst != comm.rank:
                    comm.isend(comm.rank * 10, dst)
            reqs = [
                comm.irecv(src) for src in range(comm.size) if src != comm.rank
            ]
            return sorted(waitall(reqs))

        results = run_spmd(prog, 4, timeout=10)
        for r, got in enumerate(results):
            assert got == sorted(10 * s for s in range(4) if s != r)

    def test_irecv_bad_peer(self):
        def prog(comm):
            comm.irecv(99)

        with pytest.raises(CommError):
            run_spmd(prog, 2, timeout=5)

    def test_standalone_completed_request(self):
        req = Request(completed=True, value=42)
        assert req.test() == (True, 42)
        assert req.wait() == 42


class TestWaitany:
    def test_returns_each_completion_once(self):
        def prog(comm):
            if comm.rank == 0:
                reqs = [comm.irecv(src) for src in (1, 2, 3)]
                got = []
                while reqs:
                    idx, value = waitany(reqs)
                    got.append(value)
                    reqs.pop(idx)
                return sorted(got)
            time.sleep(0.005 * comm.rank)  # stagger arrivals
            comm.send(comm.rank * 11, 0)
            return None

        assert run_spmd(prog, 4, timeout=10)[0] == [11, 22, 33]

    def test_empty_list_raises(self):
        with pytest.raises(CommError, match="at least one"):
            waitany([])

    def test_timeout_raises(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.irecv(1)
                with pytest.raises(CommError, match="timed out"):
                    waitany([req], timeout=0.05)
                comm.send("unblock", 1)
                return True
            comm.recv(0)
            return True

        assert run_spmd(prog, 2, timeout=10) == [True, True]


class TestSendrecv:
    def test_two_rank_ring_does_not_deadlock(self):
        """Regression: both ranks call sendrecv simultaneously.  A
        blocking-send implementation would deadlock here; the isend-based
        one must exchange the payloads."""

        def prog(comm):
            other = 1 - comm.rank
            return comm.sendrecv(
                np.full(4, float(comm.rank)), dest=other, source=other
            ).tolist()

        out = run_spmd(prog, 2, timeout=10)
        assert out[0] == [1.0] * 4
        assert out[1] == [0.0] * 4

    def test_ring_shifts_each_engine(self):
        def prog(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=right, source=left)

        for engine in ("threads", "events"):
            assert run_spmd(prog, 5, timeout=10, engine=engine) == [4, 0, 1, 2, 3]

    def test_self_exchange_is_identity(self):
        def prog(comm):
            return comm.sendrecv("mine", dest=comm.rank, source=comm.rank)

        assert run_spmd(prog, 2, timeout=5) == ["mine", "mine"]


class TestCoalescing:
    PAYLOADS = 5

    def exchange(self, comm, coalesce):
        if comm.rank == 0:
            if coalesce:
                with comm.coalescing():
                    for i in range(self.PAYLOADS):
                        comm.send(np.full(8, float(i)), 1, tag=i)
            else:
                for i in range(self.PAYLOADS):
                    comm.send(np.full(8, float(i)), 1, tag=i)
            return None
        return [float(comm.recv(0, tag=i)[0]) for i in range(self.PAYLOADS)]

    def run(self, coalesce):
        tracker = CommTracker()
        with tracing() as (_, metrics):
            out = run_spmd(self.exchange, 2, coalesce, tracker=tracker, timeout=10)
        return out, tracker, metrics.sum_values("mpisim.coalesced_payloads")

    def test_one_message_per_edge_same_bytes(self):
        """The coalescing contract: per-edge byte accounting is exact while
        the message count collapses to one per epoch."""
        plain, tr_plain, n_plain = self.run(coalesce=False)
        coal, tr_coal, n_coal = self.run(coalesce=True)
        assert plain == coal  # payloads and ordering are unchanged
        snap_plain, snap_coal = tr_plain.snapshot(), tr_coal.snapshot()
        assert snap_plain["p2p_bytes"] == snap_coal["p2p_bytes"]
        assert snap_plain["p2p_messages"][(0, 1)] == self.PAYLOADS
        assert snap_coal["p2p_messages"][(0, 1)] == 1
        assert n_plain == 0
        assert n_coal == self.PAYLOADS

    def test_nested_epochs_flush_once(self):
        def prog(comm):
            if comm.rank == 0:
                with comm.coalescing():
                    comm.send(1, 1, tag=0)
                    with comm.coalescing():
                        comm.send(2, 1, tag=1)
                    comm.send(3, 1, tag=2)
                return None
            return [comm.recv(0, tag=t) for t in range(3)]

        tracker = CommTracker()
        out = run_spmd(prog, 2, tracker=tracker, timeout=10)
        assert out[1] == [1, 2, 3]
        assert tracker.snapshot()["p2p_messages"][(0, 1)] == 1

    def test_blocking_recv_inside_epoch_flushes(self):
        """Progress guarantee: a receive inside an open epoch must flush
        staged sends first, or two ranks could deadlock waiting on each
        other's unflushed traffic."""

        def prog(comm):
            other = 1 - comm.rank
            with comm.coalescing():
                comm.send(comm.rank * 5, other)
                return comm.recv(other)

        assert run_spmd(prog, 2, timeout=10) == [5, 0]


class TestLatency:
    def test_messages_arrive_after_the_modeled_delay(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("late", 1)
                return 0.0
            t0 = time.perf_counter()
            comm.recv(0)
            return time.perf_counter() - t0

        elapsed = run_spmd(prog, 2, timeout=10, latency=0.05)[1]
        assert elapsed >= 0.03

    def test_zero_latency_is_prompt(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("now", 1)
                return 0.0
            t0 = time.perf_counter()
            comm.recv(0)
            return time.perf_counter() - t0

        elapsed = run_spmd(prog, 2, timeout=10)[1]
        assert elapsed < 1.0
