"""Unit tests for the distributed layer: partitions, halos, matrices, vectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import (
    DistMatrix,
    DistVector,
    HaloSchedule,
    RowPartition,
    spmd_cg,
    spmd_dot,
    spmd_halo_update,
    spmd_spmv,
)
from repro.errors import PartitionError, ShapeError
from repro.mpisim import CommTracker
from repro.sparse import CSRMatrix, SparsityPattern

from conftest import random_sparse


class TestRowPartition:
    def test_contiguous(self):
        part = RowPartition.contiguous(10, 3)
        assert part.nparts == 3
        assert part.sizes().sum() == 10
        assert part.sizes().max() - part.sizes().min() <= 1

    def test_local_global_roundtrip(self):
        part = RowPartition(np.array([1, 0, 1, 0, 2]))
        for p in range(3):
            ids = part.global_ids[p]
            assert np.array_equal(part.to_global(p, part.to_local(p, ids)), ids)

    def test_local_index_consistency(self):
        part = RowPartition(np.array([0, 1, 0, 1]))
        assert part.local_index[0] == 0
        assert part.local_index[2] == 1
        assert part.local_index[1] == 0
        assert part.local_index[3] == 1

    def test_to_local_rejects_foreign_rows(self):
        part = RowPartition(np.array([0, 1]))
        with pytest.raises(PartitionError):
            part.to_local(0, np.array([1]))

    def test_rejects_empty_rank(self):
        with pytest.raises(PartitionError):
            RowPartition(np.array([0, 0, 2, 2]), nparts=3)

    def test_from_matrix_single_part(self, poisson16):
        part = RowPartition.from_matrix(poisson16, 1)
        assert part.nparts == 1
        assert part.size_of(0) == poisson16.nrows

    def test_equality(self):
        a = RowPartition(np.array([0, 1, 0]))
        b = RowPartition(np.array([0, 1, 0]))
        c = RowPartition(np.array([1, 0, 0]))
        assert a == b
        assert a != c


class TestHaloSchedule:
    def test_from_pattern_identifies_halo_columns(self):
        # 4x4 matrix, ranks {0,1} own rows {0,1} and {2,3}
        mat = CSRMatrix.from_dense(
            np.array(
                [
                    [2.0, 1.0, 0.0, 0.0],
                    [1.0, 2.0, 1.0, 0.0],
                    [0.0, 1.0, 2.0, 1.0],
                    [0.0, 0.0, 1.0, 2.0],
                ]
            )
        )
        part = RowPartition(np.array([0, 0, 1, 1]))
        sched = HaloSchedule.from_pattern(SparsityPattern.from_csr(mat), part)
        assert sched.ext_cols[0].tolist() == [2]
        assert sched.ext_cols[1].tolist() == [1]
        assert sched.edges() == {(0, 1), (1, 0)}
        assert sched.total_halo_values() == 2

    def test_update_moves_correct_values(self, poisson16):
        part = RowPartition.from_matrix(poisson16, 4, seed=1)
        sched = HaloSchedule.from_pattern(SparsityPattern.from_csr(poisson16), part)
        x = np.arange(poisson16.nrows, dtype=np.float64)
        parts = [x[ids] for ids in part.global_ids]
        halos = sched.update(parts)
        for p in range(4):
            assert np.allclose(halos[p], x[sched.ext_cols[p]])

    def test_update_tracks_bytes(self, poisson16):
        part = RowPartition.from_matrix(poisson16, 4, seed=1)
        sched = HaloSchedule.from_pattern(SparsityPattern.from_csr(poisson16), part)
        tracker = CommTracker()
        parts = [np.zeros(part.size_of(p)) for p in range(4)]
        sched.update(parts, tracker)
        assert tracker.total_bytes == 8 * sched.total_halo_values()

    def test_equality_is_per_rank_columns(self, poisson16):
        part = RowPartition.from_matrix(poisson16, 3, seed=2)
        pat = SparsityPattern.from_csr(poisson16)
        assert HaloSchedule.from_pattern(pat, part) == HaloSchedule.from_pattern(pat, part)

    def test_rejects_owned_ext_cols(self):
        part = RowPartition(np.array([0, 1]))
        with pytest.raises(PartitionError):
            HaloSchedule(part, [np.array([0]), np.array([])])

    def test_rejects_unsorted_ext_cols(self):
        part = RowPartition(np.array([0, 1, 1]))
        with pytest.raises(PartitionError):
            HaloSchedule(part, [np.array([2, 1]), np.array([])])


class TestDistVector:
    def test_global_roundtrip(self, rng):
        part = RowPartition(np.array([2, 0, 1, 0, 2, 1]))
        x = rng.standard_normal(6)
        assert np.allclose(DistVector.from_global(x, part).to_global(), x)

    def test_dot_matches_global(self, rng):
        part = RowPartition.contiguous(20, 4)
        x = rng.standard_normal(20)
        y = rng.standard_normal(20)
        dx, dy = DistVector.from_global(x, part), DistVector.from_global(y, part)
        assert dx.dot(dy) == pytest.approx(float(x @ y))
        assert dx.norm2() == pytest.approx(float(np.linalg.norm(x)))

    def test_axpy_xpay_scale(self, rng):
        part = RowPartition.contiguous(10, 2)
        x = rng.standard_normal(10)
        y = rng.standard_normal(10)
        dx, dy = DistVector.from_global(x, part), DistVector.from_global(y, part)
        dy.axpy(0.5, dx)
        assert np.allclose(dy.to_global(), y + 0.5 * x)
        dy2 = DistVector.from_global(y, part)
        dy2.xpay(dx, 2.0)
        assert np.allclose(dy2.to_global(), x + 2.0 * y)
        dx.scale(3.0)
        assert np.allclose(dx.to_global(), 3.0 * x)

    def test_partition_mismatch(self, rng):
        a = DistVector.from_global(rng.standard_normal(6), RowPartition.contiguous(6, 2))
        b = DistVector.from_global(rng.standard_normal(6), RowPartition.contiguous(6, 3))
        with pytest.raises(ShapeError):
            a.dot(b)

    def test_dot_records_allreduce(self, rng):
        part = RowPartition.contiguous(8, 2)
        x = DistVector.from_global(rng.standard_normal(8), part)
        tracker = CommTracker()
        x.dot(x, tracker)
        assert tracker.collective_calls["allreduce"] == 1

    def test_shape_validation(self):
        part = RowPartition.contiguous(4, 2)
        with pytest.raises(ShapeError):
            DistVector(part, [np.zeros(3), np.zeros(2)])
        with pytest.raises(ShapeError):
            DistVector.from_global(np.zeros(5), part)


class TestDistMatrix:
    def test_global_roundtrip(self, poisson16):
        part = RowPartition.from_matrix(poisson16, 4, seed=0)
        assert DistMatrix.from_global(poisson16, part).to_global().allclose(poisson16)

    def test_spmv_matches_serial(self, dist_poisson16, rng):
        mat, part, da, _ = dist_poisson16
        x = rng.standard_normal(mat.nrows)
        dx = DistVector.from_global(x, part)
        assert np.allclose(da.spmv(dx).to_global(), mat.spmv(x))

    def test_spmv_single_rank(self, poisson16, rng):
        part = RowPartition.from_matrix(poisson16, 1)
        da = DistMatrix.from_global(poisson16, part)
        x = rng.standard_normal(poisson16.nrows)
        assert np.allclose(
            da.spmv(DistVector.from_global(x, part)).to_global(), poisson16.spmv(x)
        )
        assert da.schedule.total_halo_values() == 0

    def test_local_column_layout(self, poisson16):
        part = RowPartition.from_matrix(poisson16, 3, seed=4)
        da = DistMatrix.from_global(poisson16, part)
        for lm in da.locals:
            assert lm.csr.shape == (lm.n_local, lm.n_local + lm.n_halo)
            assert lm.local_nnz() + lm.halo_nnz() == lm.nnz
            # a local column's global id is its owner's row
            if lm.n_local:
                assert lm.column_global_id(0) == lm.global_rows[0]
            if lm.n_halo:
                assert lm.column_global_id(lm.n_local) == lm.ext_cols[0]

    def test_nnz_per_rank_sums_to_total(self, dist_poisson16):
        mat, _, da, _ = dist_poisson16
        assert da.nnz_per_rank().sum() == mat.nnz
        assert np.array_equal(da.flops_per_rank(), 2 * da.nnz_per_rank())

    def test_spmv_tracks_halo_traffic(self, dist_poisson16, rng):
        mat, part, da, _ = dist_poisson16
        tracker = CommTracker()
        da.spmv(DistVector.from_global(rng.standard_normal(mat.nrows), part), tracker)
        assert tracker.total_bytes == 8 * da.schedule.total_halo_values()
        assert tracker.edges() == da.schedule.edges()

    def test_rejects_rectangular(self, rng):
        with pytest.raises(ShapeError):
            DistMatrix.from_global(random_sparse(rng, 4, 6), RowPartition.contiguous(4, 2))

    def test_rejects_partition_size_mismatch(self, poisson16):
        with pytest.raises(ShapeError):
            DistMatrix.from_global(poisson16, RowPartition.contiguous(10, 2))


class TestSPMD:
    def test_spmd_spmv_equals_bsp(self, dist_poisson16, rng):
        mat, part, da, _ = dist_poisson16
        x = DistVector.from_global(rng.standard_normal(mat.nrows), part)
        bsp = da.spmv(x)
        spmd = spmd_spmv(da, x)
        assert np.allclose(spmd.to_global(), bsp.to_global())

    def test_spmd_halo_equals_bsp(self, dist_poisson16, rng):
        mat, part, da, _ = dist_poisson16
        x = DistVector.from_global(rng.standard_normal(mat.nrows), part)
        bsp = da.schedule.update(x.parts)
        spmd = spmd_halo_update(da, x)
        for a, b in zip(bsp, spmd):
            assert np.allclose(a, b)

    def test_spmd_messages_match_schedule_edges(self, dist_poisson16, rng):
        mat, part, da, _ = dist_poisson16
        x = DistVector.from_global(rng.standard_normal(mat.nrows), part)
        tracker = CommTracker()
        spmd_halo_update(da, x, tracker)
        assert tracker.edges() == da.schedule.edges()
        assert tracker.total_bytes == 8 * da.schedule.total_halo_values()

    def test_spmd_dot(self, dist_poisson16, rng):
        mat, part, _, _ = dist_poisson16
        x = rng.standard_normal(mat.nrows)
        dx = DistVector.from_global(x, part)
        assert spmd_dot(dx, dx) == pytest.approx(float(x @ x))

    def test_spmd_cg_solves(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        sol, iters = spmd_cg(da, b, rtol=1e-8)
        x = sol.to_global()
        bg = b.to_global()
        assert np.linalg.norm(mat.spmv(x) - bg) <= 1.1e-8 * np.linalg.norm(bg)
        assert iters > 0


class TestRedistribution:
    def test_vector_roundtrip(self, poisson16, rng):
        from repro.dist import redistribute_vector

        old = RowPartition.from_matrix(poisson16, 3, seed=0)
        new = RowPartition.contiguous(poisson16.nrows, 4)
        x = rng.standard_normal(poisson16.nrows)
        dx = DistVector.from_global(x, old)
        moved = redistribute_vector(dx, new)
        assert moved.partition == new
        assert np.allclose(moved.to_global(), x)

    def test_matrix_preserves_values_and_schedule_changes(self, poisson16):
        from repro.dist import redistribute_matrix

        old = RowPartition.from_matrix(poisson16, 3, seed=0)
        new = RowPartition.from_matrix(poisson16, 5, seed=1)
        da = DistMatrix.from_global(poisson16, old)
        moved = redistribute_matrix(da, new)
        assert moved.to_global().allclose(poisson16)
        assert moved.partition.nparts == 5

    def test_migration_volume_counts_changed_rows(self):
        from repro.dist import migration_volume

        old = RowPartition(np.array([0, 0, 1, 1]))
        new = RowPartition(np.array([0, 1, 1, 0]))
        vol = migration_volume(old, new)
        assert vol == {(0, 1): 1, (1, 0): 1}

    def test_identity_migration_is_free(self, poisson16):
        from repro.dist import migration_volume

        part = RowPartition.from_matrix(poisson16, 4, seed=2)
        assert migration_volume(part, part) == {}

    def test_tracker_records_traffic(self, poisson16, rng):
        from repro.dist import redistribute_vector

        old = RowPartition.contiguous(poisson16.nrows, 2)
        new = RowPartition.contiguous(poisson16.nrows, 4)
        tracker = CommTracker()
        x = DistVector.from_global(rng.standard_normal(poisson16.nrows), old)
        redistribute_vector(x, new, tracker)
        assert tracker.total_bytes > 0

    def test_shape_mismatch(self, poisson16, rng):
        from repro.dist import redistribute_vector
        from repro.errors import ShapeError as SE

        old = RowPartition.contiguous(poisson16.nrows, 2)
        bad = RowPartition.contiguous(poisson16.nrows + 1, 2)
        x = DistVector.from_global(rng.standard_normal(poisson16.nrows), old)
        with pytest.raises(SE):
            redistribute_vector(x, bad)
