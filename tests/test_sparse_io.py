"""Unit tests for MatrixMarket I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SparseFormatError
from repro.sparse import read_matrix_market, write_matrix_market

from conftest import random_sparse


class TestRoundtrip:
    def test_general_roundtrip(self, rng, tmp_path):
        mat = random_sparse(rng, 8, 6)
        path = tmp_path / "m.mtx"
        write_matrix_market(path, mat)
        assert read_matrix_market(path).allclose(mat)

    def test_symmetric_roundtrip(self, small_spd, tmp_path):
        path = tmp_path / "s.mtx"
        write_matrix_market(path, small_spd, symmetric=True)
        back = read_matrix_market(path)
        assert back.allclose(small_spd)

    def test_gzip_roundtrip(self, rng, tmp_path):
        mat = random_sparse(rng, 5, 5)
        path = tmp_path / "m.mtx.gz"
        write_matrix_market(path, mat)
        assert read_matrix_market(path).allclose(mat)


class TestParsing:
    def test_pattern_field(self, tmp_path):
        path = tmp_path / "p.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% comment line\n"
            "2 2 2\n1 1\n2 2\n"
        )
        mat = read_matrix_market(path)
        assert np.allclose(mat.to_dense(), np.eye(2))

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real symmetric\n"
            "2 2 2\n1 1 2.0\n2 1 3.0\n"
        )
        mat = read_matrix_market(path)
        assert np.allclose(mat.to_dense(), [[2.0, 3.0], [3.0, 0.0]])

    def test_missing_banner(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("2 2 0\n")
        with pytest.raises(SparseFormatError):
            read_matrix_market(path)

    def test_unsupported_format(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n")
        with pytest.raises(SparseFormatError):
            read_matrix_market(path)

    def test_unsupported_field(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n")
        with pytest.raises(SparseFormatError):
            read_matrix_market(path)

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n")
        with pytest.raises(SparseFormatError):
            read_matrix_market(path)
