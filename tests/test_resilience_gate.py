"""CI gate: the resilience subsystem's survival contracts hold.

Runs ``scripts/check_resilience.py`` as a subprocess (exactly how CI and
developers invoke it) and asserts a clean exit.  The gate solves the
reference system several times (clean baseline, acceptance scenario,
failover, quick chaos menu), so the test carries the ``chaos_smoke``
marker — deselect with ``-m "not chaos_smoke"`` for a fast tier-1 run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


def run_script(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / name)],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=480,
    )


@pytest.mark.chaos_smoke
def test_resilience_gate_is_clean():
    proc = run_script("check_resilience.py")
    assert proc.returncode == 0, (
        f"check_resilience.py failed:\n{proc.stdout}{proc.stderr}"
    )
    assert "resilience gate clean" in proc.stdout
