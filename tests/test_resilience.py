"""Tests for the fault-injection and resilience subsystem.

Covers the declarative plan layer (validation, serialisation,
determinism), the injected transport (retries, drops, duplicates,
bit-flips), solver checkpoint-restart, degraded mode after a permanent
rank failure, the chaos harness artifacts, and the error paths the
injection machinery must surface cleanly (unpicklable payloads,
non-monotonic span streams, report-format confusion).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import build_fsai, pcg
from repro.dist import DistVector, RowPartition, spmd_cg
from repro.errors import CommError, ConvergenceError, FaultPlanError
from repro.instrument import (
    TraceError,
    spans_to_dicts,
    tracing,
    validate_span_monotonicity,
)
from repro.mpisim import CommTracker, get_injector, run_spmd
from repro.resilience import (
    ChaosError,
    ChaosReport,
    CheckpointManager,
    FaultInjector,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    PayloadBitFlip,
    RankFailure,
    RankStall,
    ResilienceConfig,
    degrade_system,
    degrade_vector,
    fault_injection,
    solve_with_failover,
)

RTOL = 1e-8
IDENTICAL_RTOL = 1e-10


# ---------------------------------------------------------------------------
# FaultPlan: validation and serialisation
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_empty_plan_injects_nothing(self):
        plan = FaultPlan()
        assert plan.empty
        verdict = FaultInjector(plan).message_verdict(0, 1)
        assert verdict.clean

    @pytest.mark.parametrize("bad", [-0.1, 1.5, 2.0])
    def test_probability_out_of_range_rejected(self, bad):
        with pytest.raises(FaultPlanError, match="probability"):
            MessageDelay(probability=bad, seconds=0.01)
        with pytest.raises(FaultPlanError, match="probability"):
            MessageDrop(probability=bad)

    def test_bad_bit_rejected(self):
        with pytest.raises(FaultPlanError, match="bit"):
            PayloadBitFlip(probability=0.5, bit=64)

    def test_negative_knobs_rejected(self):
        with pytest.raises(FaultPlanError):
            MessageDelay(probability=0.5, seconds=-1.0)
        with pytest.raises(FaultPlanError):
            RankStall(rank=0, seconds=-0.1)
        with pytest.raises(FaultPlanError):
            FaultPlan(max_retries=-1)

    def test_wrong_rule_type_rejected(self):
        with pytest.raises(FaultPlanError, match="MessageDelay"):
            FaultPlan(delays=(MessageDrop(probability=0.5),))

    def test_round_trip(self):
        plan = FaultPlan(
            seed=11,
            delays=(MessageDelay(probability=0.05, seconds=0.08, src=1),),
            drops=(MessageDrop(probability=0.1),),
            duplicates=(MessageDuplicate(probability=0.2, dst=2),),
            bitflips=(PayloadBitFlip(probability=0.01, bit=62),),
            stalls=(RankStall(rank=1, seconds=0.02, at_update=3),),
            failures=(RankFailure(rank=2, at_update=5),),
            max_retries=3,
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(FaultPlanError, match="unknown"):
            FaultPlan.from_dict({"seed": 1, "jitter": []})
        with pytest.raises(FaultPlanError):
            FaultPlan.from_dict("not a dict")

    def test_with_seed_preserves_rules(self):
        plan = FaultPlan(seed=1, drops=(MessageDrop(probability=0.5),))
        other = plan.with_seed(99)
        assert other.seed == 99
        assert other.drops == plan.drops


# ---------------------------------------------------------------------------
# FaultInjector: seeded determinism
# ---------------------------------------------------------------------------


class TestInjectorDeterminism:
    PLAN = FaultPlan(
        seed=5,
        drops=(MessageDrop(probability=0.3),),
        delays=(MessageDelay(probability=0.3, seconds=0.01),),
    )

    @staticmethod
    def _verdicts(plan, n=40):
        inj = FaultInjector(plan)
        return [inj.message_verdict(0, 1, tag=7) for _ in range(n)]

    def test_same_seed_same_sequence(self):
        a = self._verdicts(self.PLAN)
        b = self._verdicts(self.PLAN)
        assert [(v.dropped, v.delay_s) for v in a] == [
            (v.dropped, v.delay_s) for v in b
        ]

    def test_different_seed_differs(self):
        a = self._verdicts(self.PLAN)
        b = self._verdicts(self.PLAN.with_seed(6))
        assert [(v.dropped, v.delay_s) for v in a] != [
            (v.dropped, v.delay_s) for v in b
        ]

    def test_edges_are_independent_streams(self):
        inj = FaultInjector(self.PLAN)
        a = [inj.message_verdict(0, 1) for _ in range(20)]
        b = [inj.message_verdict(0, 2) for _ in range(20)]
        assert [(v.dropped, v.delay_s) for v in a] != [
            (v.dropped, v.delay_s) for v in b
        ]

    def test_corrupt_flips_exactly_one_bit(self):
        inj = FaultInjector(FaultPlan(bitflips=(PayloadBitFlip(1.0, bit=62),)))
        verdict = inj.message_verdict(0, 1)
        assert verdict.flip_bit == 62
        payload = np.linspace(1.0, 2.0, 8)
        clean = payload.copy()
        out = inj.corrupt(payload, verdict)
        assert np.sum(out != clean) == 1
        # non-float64 payloads pass through untouched
        ints = np.arange(4)
        assert inj.corrupt(ints, verdict) is ints

    def test_installation_is_scoped(self):
        assert get_injector() is None
        with fault_injection(FaultPlan(seed=1)) as inj:
            assert get_injector() is inj
        assert get_injector() is None


# ---------------------------------------------------------------------------
# BSP transport: acceptance scenario, retries, exhaustion
# ---------------------------------------------------------------------------


class TestInjectedTransport:
    def test_delay_and_stall_preserve_residual(self, dist_poisson16):
        """The ISSUE acceptance contract: one transient stall plus 5%
        over-timeout delays must converge to the clean run's final
        residual (1e-10 relative) with ``halo.retries > 0``."""
        _, part, da, b = dist_poisson16
        pre = build_fsai(da.to_global(), part)
        clean = pcg(da, b, precond=pre, rtol=RTOL)
        plan = FaultPlan(
            seed=7,
            delays=(MessageDelay(probability=0.05, seconds=0.08),),
            stalls=(RankStall(rank=1, seconds=0.02, at_update=2),),
        )
        with tracing() as (_, metrics):
            with fault_injection(plan) as inj:
                faulty = pcg(da, b, precond=pre, rtol=RTOL)
            retries = metrics.sum_values("halo.retries")
            stalls = metrics.sum_values("resilience.stalls")
        assert faulty.converged
        assert faulty.iterations == clean.iterations
        rel = abs(faulty.final_residual - clean.final_residual) / abs(
            clean.final_residual
        )
        assert rel <= IDENTICAL_RTOL
        assert retries > 0
        assert inj.counts["retries"] == retries
        assert stalls == 1 and inj.counts["stalls"] == 1

    def test_drop_exhaustion_raises_comm_error(self, dist_poisson16):
        _, part, da, b = dist_poisson16
        pre = build_fsai(da.to_global(), part)
        plan = FaultPlan(seed=3, drops=(MessageDrop(probability=1.0),), max_retries=2)
        with tracing() as (_, metrics):
            with fault_injection(plan):
                with pytest.raises(CommError, match="max_retries"):
                    pcg(da, b, precond=pre, rtol=RTOL)
            assert metrics.sum_values("halo.timeouts") >= 1
            assert metrics.sum_values("halo.retries") >= 3

    def test_zero_overhead_without_injector(self, dist_poisson16):
        _, part, da, b = dist_poisson16
        pre = build_fsai(da.to_global(), part)
        assert get_injector() is None
        with tracing() as (_, metrics):
            result = pcg(da, b, precond=pre, rtol=RTOL)
            assert metrics.sum_values("halo.retries") == 0
            assert metrics.sum_values("halo.timeouts") == 0
        assert result.converged


# ---------------------------------------------------------------------------
# Checkpoint-restart
# ---------------------------------------------------------------------------


class TestCheckpointRestart:
    def test_manager_due_and_budget(self):
        mgr = CheckpointManager(ResilienceConfig(checkpoint_interval=5, max_rollbacks=1))
        assert mgr.due(0) and mgr.due(5) and not mgr.due(3)
        with pytest.raises(ConvergenceError, match="before any checkpoint"):
            mgr.rollback("divergence")
        part = RowPartition(np.array([0, 0, 0, 1, 1]), 2)
        x = DistVector(part, [np.ones(3), np.ones(2)])
        mgr.save(0, 1.0, 1.0, x, x, x)
        assert mgr.should_rollback(float("nan"))
        assert mgr.should_rollback(1e4)
        assert not mgr.should_rollback(2.0)
        assert mgr.rollback("divergence").iteration == 0
        with pytest.raises(ConvergenceError, match="rolled back"):
            mgr.rollback("divergence")

    def test_restore_into_copies_in_place(self):
        part = RowPartition(np.array([0, 0, 0, 1, 1]), 2)
        x = DistVector(part, [np.arange(3.0), np.arange(2.0)])
        mgr = CheckpointManager(ResilienceConfig())
        mgr.save(0, 1.0, 1.0, x, x, x)
        for p in x.parts:
            p.fill(-1.0)
        backing = [p for p in x.parts]
        mgr.restore_into(mgr.checkpoint.x_parts, x)
        assert all(a is b for a, b in zip(x.parts, backing))
        np.testing.assert_array_equal(x.parts[0], np.arange(3.0))

    def test_bitflip_triggers_rollback_and_recovers(self, dist_poisson16):
        """A rare injected bit-flip in the exponent range must be caught
        by the divergence trigger and rolled back, and the solve must
        still converge.  (Seed chosen so the plan fires at least once;
        the checkpoint interval is short enough that replay outruns the
        flip rate.)"""
        _, part, da, b = dist_poisson16
        pre = build_fsai(da.to_global(), part)
        clean = pcg(da, b, precond=pre, rtol=RTOL)
        plan = FaultPlan(seed=0, bitflips=(PayloadBitFlip(probability=0.002, bit=62),))
        cfg = ResilienceConfig(checkpoint_interval=5, max_rollbacks=10)
        with tracing() as (_, metrics):
            with fault_injection(plan) as inj:
                with np.errstate(over="ignore", invalid="ignore"):
                    faulty = pcg(da, b, precond=pre, rtol=RTOL, resilience=cfg)
            rollbacks = metrics.sum_values("pcg.rollbacks")
            checkpoints = metrics.sum_values("pcg.checkpoints")
        assert inj.counts["bitflips"] > 0
        assert rollbacks > 0
        assert checkpoints > 0
        assert faulty.converged
        assert faulty.iterations == clean.iterations

    def test_resilience_config_is_inert_without_faults(self, dist_poisson16):
        _, part, da, b = dist_poisson16
        pre = build_fsai(da.to_global(), part)
        clean = pcg(da, b, precond=pre, rtol=RTOL)
        with tracing() as (_, metrics):
            guarded = pcg(da, b, precond=pre, rtol=RTOL, resilience=ResilienceConfig())
            assert metrics.sum_values("pcg.rollbacks") == 0
            assert metrics.sum_values("pcg.checkpoints") > 0
        assert guarded.iterations == clean.iterations
        assert guarded.final_residual == clean.final_residual


# ---------------------------------------------------------------------------
# Degraded mode
# ---------------------------------------------------------------------------


class TestDegradedMode:
    def test_degrade_system_audits_unaffected_edges(self, dist_poisson16):
        _, part, da, b = dist_poisson16
        system = degrade_system(da, 1)
        assert system.nparts == part.nparts - 1
        assert system.failed_rank == 1
        assert 1 not in system.rank_map
        assert system.audit.invariant
        moved = degrade_vector(b, system)
        np.testing.assert_allclose(moved.to_global(), b.to_global())

    def test_degraded_solve_matches_clean_solution(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        x_ref = pcg(da, b, precond=build_fsai(mat, part), rtol=RTOL).x.to_global()
        system = degrade_system(da, 2)
        pre = build_fsai(mat, system.partition)
        result = pcg(system.matrix, degrade_vector(b, system), precond=pre, rtol=RTOL)
        assert result.converged
        np.testing.assert_allclose(result.x.to_global(), x_ref, atol=1e-6)

    def test_solve_with_failover(self, dist_poisson16):
        mat, _, da, b = dist_poisson16
        plan = FaultPlan(seed=7, failures=(RankFailure(rank=1, at_update=3),))
        with fault_injection(plan):
            outcome = solve_with_failover(
                da, b, precond_builder=lambda a, p: build_fsai(a, p), rtol=RTOL
            )
        assert outcome.failed_over
        assert outcome.system.failed_rank == 1
        assert outcome.result.converged
        assert outcome.system.audit.invariant

    def test_no_failure_is_a_plain_solve(self, dist_poisson16):
        mat, _, da, b = dist_poisson16
        outcome = solve_with_failover(
            da, b, precond_builder=lambda a, p: build_fsai(a, p), rtol=RTOL
        )
        assert not outcome.failed_over
        assert outcome.system is None
        assert outcome.result.converged


# ---------------------------------------------------------------------------
# SPMD engine under injection
# ---------------------------------------------------------------------------


class TestSpmdInjection:
    def test_duplicates_are_deduplicated(self, dist_poisson16):
        _, _, da, b = dist_poisson16
        x_clean, it_clean = spmd_cg(da, b, rtol=RTOL)
        plan = FaultPlan(seed=2, duplicates=(MessageDuplicate(probability=0.1),))
        with tracing() as (_, metrics):
            with fault_injection(plan) as inj:
                x_dup, it_dup = spmd_cg(da, b, rtol=RTOL)
            dups = metrics.sum_values("mpisim.dup_messages")
        assert inj.counts["duplicates"] > 0
        assert dups == inj.counts["duplicates"]
        assert it_dup == it_clean
        np.testing.assert_array_equal(x_dup.to_global(), x_clean.to_global())

    def test_unpicklable_payload_raises_comm_error_under_retry(self):
        """The tracker must refuse to size an unpicklable payload even when
        the message already survived the injected retry loop."""
        plan = FaultPlan(seed=4, drops=(MessageDrop(probability=0.4),))

        def prog(comm):
            # sends are buffered, so rank 1 need not post a receive: the
            # failure fires in rank 0's send path, after the retry loop
            if comm.rank == 0:
                comm.send(threading.Lock(), 1, tag=1)

        with fault_injection(plan):
            with pytest.raises(CommError, match="not picklable"):
                run_spmd(prog, 2, tracker=CommTracker(), timeout=10.0)


# ---------------------------------------------------------------------------
# Error paths through the observability stack
# ---------------------------------------------------------------------------


class TestObservabilityErrorPaths:
    def test_injected_delay_spans_validate_then_tampering_fails(self, dist_poisson16):
        _, part, da, b = dist_poisson16
        pre = build_fsai(da.to_global(), part)
        plan = FaultPlan(seed=7, delays=(MessageDelay(probability=0.05, seconds=0.08),))
        with tracing() as (tracer, _):
            with fault_injection(plan):
                pcg(da, b, precond=pre, rtol=RTOL)
            spans = spans_to_dicts(tracer.spans)
        assert any(d["name"].startswith("resilience.") for d in spans)
        validate_span_monotonicity(spans, source="chaos")
        # rewind a copy of the last span: same stream, earlier start
        bad = dict(spans[-1])
        bad["start"] = spans[0]["start"] - 1.0
        bad["end"] = bad["start"] + 0.5
        with pytest.raises(TraceError, match="non-monotonic"):
            validate_span_monotonicity(spans + [bad], source="chaos")

    def test_report_compare_rejects_chaos_artifact(self, tmp_path, dist_poisson16):
        from repro.cli import main
        from repro.observe import RunReport

        base = RunReport(meta={"label": "base"}, metrics={"iterations": 30})
        base_path = base.save(tmp_path / "base.json")
        chaos = ChaosReport(meta={"matrix": "poisson2d:16"}, clean={"iterations": 30})
        chaos_path = chaos.save(tmp_path / "chaos.json")
        assert (
            main(["report", str(base_path), "--compare", str(chaos_path)]) == 2
        )

    def test_chaos_report_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "not_chaos.json"
        path.write_text('{"format": "repro-run-report", "version": 1}')
        with pytest.raises(ChaosError, match="not a chaos report"):
            ChaosReport.load(path)
        path.write_text("{broken")
        with pytest.raises(ChaosError, match="cannot read"):
            ChaosReport.load(path)

    def test_chaos_report_round_trip(self, tmp_path):
        report = ChaosReport(
            meta={"matrix": "poisson2d:16", "ranks": 4, "seed": 7},
            clean={"iterations": 30, "final_residual": 1e-9},
        )
        loaded = ChaosReport.load(report.save(tmp_path / "chaos.json"))
        assert loaded.to_dict() == report.to_dict()
        assert loaded.survived  # vacuously: no scenarios
