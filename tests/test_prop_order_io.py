"""Property-based tests for reordering and MatrixMarket I/O."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.order import (
    bandwidth,
    inverse_permutation,
    permute_symmetric,
    permute_vector,
    rcm_ordering,
    unpermute_vector,
)
from repro.sparse import CSRMatrix, read_matrix_market, write_matrix_market

SETTINGS = settings(max_examples=25, deadline=None)


@st.composite
def spd_matrices(draw, max_dim=15):
    n = draw(st.integers(2, max_dim))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    density = draw(st.floats(0.1, 0.5))
    base = rng.standard_normal((n, n))
    base[rng.random((n, n)) > density] = 0.0
    return CSRMatrix.from_dense(base @ base.T + n * np.eye(n), tol=1e-12)


class TestPermutationProperties:
    @SETTINGS
    @given(spd_matrices(), st.integers(0, 2**31 - 1))
    def test_permutation_similarity(self, mat, seed):
        """P A Pᵀ has the same eigenvalues as A."""
        perm = np.random.default_rng(seed).permutation(mat.nrows)
        permuted = permute_symmetric(mat, perm)
        w_a = np.linalg.eigvalsh(mat.to_dense())
        w_p = np.linalg.eigvalsh(permuted.to_dense())
        assert np.allclose(np.sort(w_a), np.sort(w_p), rtol=1e-8, atol=1e-10)

    @SETTINGS
    @given(spd_matrices(), st.integers(0, 2**31 - 1))
    def test_double_permutation_roundtrip(self, mat, seed):
        perm = np.random.default_rng(seed).permutation(mat.nrows)
        back = permute_symmetric(permute_symmetric(mat, perm), inverse_permutation(perm))
        assert back.allclose(mat, atol=0)

    @SETTINGS
    @given(st.integers(2, 30), st.integers(0, 2**31 - 1))
    def test_vector_permutation_inverse(self, n, seed):
        rng = np.random.default_rng(seed)
        perm = rng.permutation(n)
        x = rng.standard_normal(n)
        assert np.allclose(unpermute_vector(permute_vector(x, perm), perm), x)
        assert np.allclose(permute_vector(unpermute_vector(x, perm), perm), x)


class TestRCMProperties:
    @SETTINGS
    @given(spd_matrices())
    def test_rcm_is_permutation(self, mat):
        perm = rcm_ordering(mat)
        assert np.array_equal(np.sort(perm), np.arange(mat.nrows))

    @SETTINGS
    @given(spd_matrices(), st.integers(0, 2**31 - 1))
    def test_rcm_never_worse_than_random(self, mat, seed):
        rng = np.random.default_rng(seed)
        shuffled = permute_symmetric(mat, rng.permutation(mat.nrows))
        rcm = permute_symmetric(shuffled, rcm_ordering(shuffled))
        # RCM may not beat a lucky shuffle on tiny graphs but must stay sane
        assert bandwidth(rcm) <= max(bandwidth(shuffled), 1) * 2


class TestIOProperties:
    @SETTINGS
    @given(spd_matrices())
    def test_symmetric_file_roundtrip(self, mat):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "m.mtx"
            write_matrix_market(path, mat, symmetric=True)
            assert read_matrix_market(path).allclose(mat)

    @SETTINGS
    @given(spd_matrices(), st.integers(0, 2**31 - 1))
    def test_general_file_roundtrip_random_rect(self, mat, seed):
        import tempfile
        from pathlib import Path

        rng = np.random.default_rng(seed)
        rect = rng.standard_normal((mat.nrows, mat.nrows + 3))
        rect[rng.random(rect.shape) > 0.3] = 0.0
        rect_mat = CSRMatrix.from_dense(rect)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "r.mtx"
            write_matrix_market(path, rect_mat)
            assert read_matrix_market(path).allclose(rect_mat)
