"""Property-based tests (hypothesis) for the sparse substrate."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.sparse import CSRMatrix, SparsityPattern, spgemm, symbolic_spgemm

SETTINGS = settings(max_examples=40, deadline=None)


@st.composite
def sparse_matrices(draw, max_dim=12, square=False):
    nrows = draw(st.integers(1, max_dim))
    ncols = nrows if square else draw(st.integers(1, max_dim))
    dense = draw(
        hnp.arrays(
            np.float64,
            (nrows, ncols),
            elements=st.floats(-10, 10, allow_nan=False),
        )
    )
    # sparsify ~60%
    mask = draw(
        hnp.arrays(np.bool_, (nrows, ncols), elements=st.booleans())
    )
    dense = np.where(mask, dense, 0.0)
    return CSRMatrix.from_dense(dense)


class TestCSRProperties:
    @SETTINGS
    @given(sparse_matrices())
    def test_dense_roundtrip(self, mat):
        assert CSRMatrix.from_dense(mat.to_dense()).allclose(mat, atol=0)

    @SETTINGS
    @given(sparse_matrices())
    def test_coo_roundtrip(self, mat):
        r, c, v = mat.to_coo()
        back = CSRMatrix.from_coo(mat.shape, r, c, v)
        # explicit zeros are dropped by neither path; structures must agree
        assert back.allclose(mat, atol=0)

    @SETTINGS
    @given(sparse_matrices())
    def test_transpose_involution(self, mat):
        assert mat.transpose().transpose() == mat

    @SETTINGS
    @given(sparse_matrices(), st.integers(0, 2**32 - 1))
    def test_spmv_matches_dense(self, mat, seed):
        x = np.random.default_rng(seed).standard_normal(mat.ncols)
        assert np.allclose(mat.spmv(x), mat.to_dense() @ x)

    @SETTINGS
    @given(sparse_matrices(), st.integers(0, 2**32 - 1))
    def test_transpose_spmv_consistency(self, mat, seed):
        x = np.random.default_rng(seed).standard_normal(mat.nrows)
        assert np.allclose(mat.spmv_transpose(x), mat.transpose().spmv(x))

    @SETTINGS
    @given(sparse_matrices(square=True))
    def test_triangular_split_reassembles(self, mat):
        lower = mat.extract_lower().to_dense()
        upper = mat.extract_upper(strict=True).to_dense()
        assert np.allclose(lower + upper, mat.to_dense())

    @SETTINGS
    @given(sparse_matrices(square=True), st.integers(0, 2**32 - 1))
    def test_spmv_adjoint_identity(self, mat, seed):
        """⟨Ax, y⟩ == ⟨x, Aᵀy⟩ — exercises both SpMV kernels at once."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(mat.ncols)
        y = rng.standard_normal(mat.nrows)
        assert np.isclose(mat.spmv(x) @ y, x @ mat.spmv_transpose(y))


class TestSpGEMMProperties:
    @SETTINGS
    @given(sparse_matrices(max_dim=8, square=True), sparse_matrices(max_dim=8, square=True))
    def test_product_matches_dense(self, a, b):
        if a.ncols != b.nrows:
            b = CSRMatrix.from_dense(np.zeros((a.ncols, a.ncols)))
        assert np.allclose(spgemm(a, b).to_dense(), a.to_dense() @ b.to_dense())

    @SETTINGS
    @given(sparse_matrices(max_dim=8, square=True))
    def test_symbolic_covers_numeric(self, a):
        numeric = spgemm(a, a)
        symbolic = symbolic_spgemm(
            SparsityPattern.from_csr(a), SparsityPattern.from_csr(a)
        )
        assert SparsityPattern.from_csr(numeric).issubset(symbolic)


class TestPatternProperties:
    @SETTINGS
    @given(sparse_matrices(square=True), sparse_matrices(square=True))
    def test_union_commutative_and_absorbing(self, a, b):
        if a.shape != b.shape:
            return
        pa, pb = SparsityPattern.from_csr(a), SparsityPattern.from_csr(b)
        assert pa.union(pb) == pb.union(pa)
        assert pa.issubset(pa.union(pb))
        assert pa.intersection(pb).issubset(pa)

    @SETTINGS
    @given(sparse_matrices(square=True))
    def test_demorgan_like_identity(self, a):
        pa = SparsityPattern.from_csr(a)
        lower, diagless = pa.lower(), pa.lower(strict=True)
        assert diagless.issubset(lower)

    @SETTINGS
    @given(sparse_matrices(square=True))
    def test_transpose_involution(self, a):
        pa = SparsityPattern.from_csr(a)
        assert pa.transpose().transpose() == pa
