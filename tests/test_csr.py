"""Unit tests for the CSR matrix type."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import CSRMatrix

from conftest import random_sparse


class TestConstruction:
    def test_from_coo_roundtrip(self, rng):
        dense = rng.standard_normal((7, 9))
        dense[np.abs(dense) < 0.7] = 0.0
        rows, cols = np.nonzero(dense)
        mat = CSRMatrix.from_coo(dense.shape, rows, cols, dense[rows, cols])
        assert np.allclose(mat.to_dense(), dense)

    def test_from_coo_sums_duplicates(self):
        mat = CSRMatrix.from_coo((2, 2), [0, 0, 1], [1, 1, 0], [2.0, 3.0, 1.0])
        assert mat.nnz == 2
        assert mat.to_dense()[0, 1] == 5.0

    def test_from_coo_rejects_duplicates_when_asked(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix.from_coo(
                (2, 2), [0, 0], [1, 1], [2.0, 3.0], sum_duplicates=False
            )

    def test_from_coo_out_of_range(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix.from_coo((2, 2), [0], [5], [1.0])
        with pytest.raises(SparseFormatError):
            CSRMatrix.from_coo((2, 2), [-1], [0], [1.0])

    def test_from_coo_length_mismatch(self):
        with pytest.raises(ShapeError):
            CSRMatrix.from_coo((2, 2), [0, 1], [0], [1.0])

    def test_from_dense_tolerance(self):
        dense = np.array([[1.0, 0.05], [0.0, 2.0]])
        mat = CSRMatrix.from_dense(dense, tol=0.1)
        assert mat.nnz == 2

    def test_identity(self):
        eye = CSRMatrix.identity(5)
        assert np.allclose(eye.to_dense(), np.eye(5))
        assert eye.nnz == 5

    def test_zeros(self):
        z = CSRMatrix.zeros((3, 4))
        assert z.nnz == 0
        assert z.to_dense().shape == (3, 4)

    def test_validation_rejects_unsorted_rows(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix((2, 3), [0, 2, 2], [2, 0], [1.0, 1.0])

    def test_validation_rejects_duplicate_columns(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix((1, 3), [0, 2], [1, 1], [1.0, 1.0])

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(SparseFormatError):
            CSRMatrix((2, 2), [0, 2], [0, 1], [1.0, 1.0])  # wrong length
        with pytest.raises(SparseFormatError):
            CSRMatrix((2, 2), [0, 2, 1], [0, 1], [1.0, 1.0])  # decreasing

    def test_validation_allows_empty_rows(self):
        mat = CSRMatrix((3, 3), [0, 0, 1, 1], [2], [5.0])
        assert mat.row_nnz().tolist() == [0, 1, 0]


class TestProducts:
    def test_spmv_matches_dense(self, rng):
        mat = random_sparse(rng, 20, 30)
        x = rng.standard_normal(30)
        assert np.allclose(mat.spmv(x), mat.to_dense() @ x)

    def test_spmv_empty_rows(self):
        mat = CSRMatrix.from_coo((5, 5), [0, 4], [1, 2], [2.0, 3.0])
        assert np.allclose(mat.spmv(np.ones(5)), [2, 0, 0, 0, 3])

    def test_spmv_nonempty_row_followed_by_empty_rows(self):
        # regression: the segment of the last nonempty row must extend to the
        # end of the data array even when trailing rows are empty
        mat = CSRMatrix.from_coo((7, 7), [0, 0], [0, 1], [5.0, -7.0])
        x = np.arange(7, dtype=np.float64) + 1
        assert np.allclose(mat.spmv(x), mat.to_dense() @ x)

    def test_spmv_all_empty(self):
        mat = CSRMatrix.zeros((4, 4))
        assert np.allclose(mat.spmv(np.ones(4)), 0.0)

    def test_spmv_shape_check(self, rng):
        mat = random_sparse(rng, 4, 6)
        with pytest.raises(ShapeError):
            mat.spmv(np.ones(4))

    def test_spmv_out_parameter(self, rng):
        mat = random_sparse(rng, 8, 8)
        x = rng.standard_normal(8)
        out = np.full(8, 99.0)
        result = mat.spmv(x, out=out)
        assert result is out
        assert np.allclose(out, mat.to_dense() @ x)

    def test_spmv_transpose_matches_dense(self, rng):
        mat = random_sparse(rng, 12, 7)
        x = rng.standard_normal(12)
        assert np.allclose(mat.spmv_transpose(x), mat.to_dense().T @ x)

    def test_matmul_operator_vector(self, rng):
        mat = random_sparse(rng, 5, 5)
        x = rng.standard_normal(5)
        assert np.allclose(mat @ x, mat.spmv(x))

    def test_matmul_operator_matrix(self, rng):
        a = random_sparse(rng, 5, 6)
        b = random_sparse(rng, 6, 4)
        assert np.allclose((a @ b).to_dense(), a.to_dense() @ b.to_dense())


class TestTransforms:
    def test_transpose_matches_dense(self, rng):
        mat = random_sparse(rng, 9, 13)
        assert np.allclose(mat.transpose().to_dense(), mat.to_dense().T)

    def test_transpose_involution(self, rng):
        mat = random_sparse(rng, 10, 10)
        assert mat.transpose().transpose() == mat

    def test_diagonal(self, rng):
        mat = random_sparse(rng, 8, 8)
        assert np.allclose(mat.diagonal(), np.diag(mat.to_dense()))

    def test_diagonal_rectangular(self):
        mat = CSRMatrix.from_coo((2, 4), [0, 1], [0, 1], [3.0, 4.0])
        assert np.allclose(mat.diagonal(), [3.0, 4.0])

    def test_extract_lower_and_upper(self, rng):
        mat = random_sparse(rng, 10, 10)
        dense = mat.to_dense()
        assert np.allclose(mat.extract_lower().to_dense(), np.tril(dense))
        assert np.allclose(mat.extract_upper().to_dense(), np.triu(dense))
        assert np.allclose(
            mat.extract_lower(strict=True).to_dense(), np.tril(dense, -1)
        )
        assert np.allclose(
            mat.extract_upper(strict=True).to_dense(), np.triu(dense, 1)
        )

    def test_lower_plus_strict_upper_is_whole(self, rng):
        mat = random_sparse(rng, 10, 10)
        total = (
            mat.extract_lower().to_dense() + mat.extract_upper(strict=True).to_dense()
        )
        assert np.allclose(total, mat.to_dense())

    def test_submatrix(self, rng):
        mat = random_sparse(rng, 10, 10)
        r = np.array([1, 4, 7])
        c = np.array([0, 3, 9])
        assert np.allclose(mat.submatrix(r, c), mat.to_dense()[np.ix_(r, c)])

    def test_submatrix_unsorted_columns(self, rng):
        mat = random_sparse(rng, 10, 10)
        r = np.array([2, 5])
        c = np.array([9, 0, 4])
        assert np.allclose(mat.submatrix(r, c), mat.to_dense()[np.ix_(r, c)])

    def test_scale_rows(self, rng):
        mat = random_sparse(rng, 6, 6)
        s = rng.standard_normal(6)
        assert np.allclose(mat.scale_rows(s).to_dense(), np.diag(s) @ mat.to_dense())

    def test_drop_entries(self, rng):
        mat = random_sparse(rng, 6, 6)
        mask = np.zeros(mat.nnz, dtype=bool)
        mask[::2] = True
        dropped = mat.drop_entries(mask)
        assert dropped.nnz == mat.nnz - int(mask.sum())
        kept = mat.data[~mask]
        assert np.allclose(np.sort(dropped.data), np.sort(kept))

    def test_copy_is_independent(self, rng):
        mat = random_sparse(rng, 5, 5)
        cp = mat.copy()
        cp.data[:] = 0.0
        assert not np.allclose(mat.data, 0.0) or mat.nnz == 0


class TestComparison:
    def test_equality(self, rng):
        mat = random_sparse(rng, 5, 5)
        assert mat == mat.copy()

    def test_inequality_values(self, rng):
        mat = random_sparse(rng, 5, 5)
        if mat.nnz == 0:
            pytest.skip("empty random draw")
        other = mat.copy()
        other.data[0] += 1.0
        assert mat != other

    def test_allclose(self, rng):
        mat = random_sparse(rng, 5, 5)
        other = mat.copy()
        other.data += 1e-14
        assert mat.allclose(other)

    def test_unhashable(self, rng):
        with pytest.raises(TypeError):
            hash(random_sparse(rng, 3, 3))

    def test_repr(self, rng):
        assert "CSRMatrix" in repr(random_sparse(rng, 3, 3))


class TestArithmetic:
    def test_add_matches_dense(self, rng):
        a = random_sparse(rng, 7, 7)
        b = random_sparse(rng, 7, 7)
        assert np.allclose((a + b).to_dense(), a.to_dense() + b.to_dense())

    def test_sub_matches_dense(self, rng):
        a = random_sparse(rng, 6, 8)
        b = random_sparse(rng, 6, 8)
        assert np.allclose((a - b).to_dense(), a.to_dense() - b.to_dense())

    def test_scalar_multiplication(self, rng):
        a = random_sparse(rng, 5, 5)
        assert np.allclose((a * 3.0).to_dense(), 3.0 * a.to_dense())
        assert np.allclose((0.5 * a).to_dense(), 0.5 * a.to_dense())

    def test_self_subtraction_is_structurally_zero_valued(self, rng):
        a = random_sparse(rng, 6, 6)
        diff = a - a
        assert np.allclose(diff.to_dense(), 0.0)

    def test_add_shape_mismatch(self, rng):
        with pytest.raises(ShapeError):
            random_sparse(rng, 3, 4) + random_sparse(rng, 4, 3)

    def test_add_wrong_type(self, rng):
        with pytest.raises(TypeError):
            random_sparse(rng, 3, 3) + 1.0
