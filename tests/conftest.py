"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import DistMatrix, DistVector, RowPartition
from repro.matgen import paper_rhs, poisson2d, poisson3d
from repro.sparse import CSRMatrix


def build_poisson2d(n: int) -> CSRMatrix:
    """5-point Poisson used across tests."""
    return poisson2d(n)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def small_spd(rng) -> CSRMatrix:
    """A dense-ish random 40×40 SPD matrix with ~35% sparsity."""
    n = 40
    base = rng.standard_normal((n, n))
    base[np.abs(base) < 0.8] = 0.0
    dense = base @ base.T + n * np.eye(n)
    return CSRMatrix.from_dense(dense, tol=1e-14)


@pytest.fixture
def poisson16() -> CSRMatrix:
    return poisson2d(16)


@pytest.fixture
def poisson3d8() -> CSRMatrix:
    return poisson3d(8)


@pytest.fixture
def dist_poisson16(poisson16):
    """(A, partition, DistMatrix, rhs DistVector) on 4 ranks."""
    part = RowPartition.from_matrix(poisson16, 4, seed=7)
    da = DistMatrix.from_global(poisson16, part)
    b = DistVector.from_global(paper_rhs(poisson16, seed=3), part)
    return poisson16, part, da, b


def random_sparse(rng, nrows, ncols, density=0.2) -> CSRMatrix:
    """Helper used by several unit tests (not a fixture so it can be
    parameterised)."""
    dense = rng.standard_normal((nrows, ncols))
    mask = rng.random((nrows, ncols)) < density
    dense = np.where(mask, dense, 0.0)
    return CSRMatrix.from_dense(dense, tol=0.0)
