"""Unit tests for the distributed PCG solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import build_fsai, cg, pcg
from repro.core.baselines import jacobi_preconditioner
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.errors import ConvergenceError
from repro.matgen import PAPER_RTOL, paper_rhs, poisson2d
from repro.mpisim import CommTracker
from repro.sparse import CSRMatrix


def residual(mat, x, b):
    return np.linalg.norm(mat.spmv(x) - b)


class TestPlainCG:
    def test_solves_poisson(self, dist_poisson16):
        mat, _, da, b = dist_poisson16
        result = cg(da, b, rtol=1e-10)
        assert result.converged
        bg = b.to_global()
        assert residual(mat, result.x.to_global(), bg) <= 1.2e-10 * np.linalg.norm(bg)

    def test_identity_converges_in_one_iteration(self, rng):
        n = 16
        mat = CSRMatrix.identity(n)
        part = RowPartition.contiguous(n, 2)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(rng.standard_normal(n), part)
        result = cg(da, b)
        assert result.iterations == 1
        assert np.allclose(result.x.to_global(), b.to_global())

    def test_zero_rhs_returns_zero(self, dist_poisson16):
        _, part, da, _ = dist_poisson16
        result = cg(da, DistVector.zeros(part))
        assert result.iterations == 0
        assert result.converged
        assert np.allclose(result.x.to_global(), 0.0)

    def test_iteration_limit(self, dist_poisson16):
        _, _, da, b = dist_poisson16
        result = cg(da, b, rtol=1e-14, max_iterations=2)
        assert not result.converged
        assert result.iterations == 2

    def test_raise_on_fail(self, dist_poisson16):
        _, _, da, b = dist_poisson16
        with pytest.raises(ConvergenceError) as exc:
            cg(da, b, rtol=1e-14, max_iterations=2, raise_on_fail=True)
        assert exc.value.iterations == 2
        assert exc.value.residual_norm > 0

    def test_residual_history_monotone_overall(self, dist_poisson16):
        _, _, da, b = dist_poisson16
        result = cg(da, b)
        hist = np.array(result.residual_norms)
        assert hist.size == result.iterations + 1
        assert hist[-1] < hist[0] * 1e-7

    def test_breakdown_on_indefinite(self):
        dense = np.array([[1.0, 4.0], [4.0, 1.0]])
        mat = CSRMatrix.from_dense(dense)
        part = RowPartition.contiguous(2, 1)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(np.array([1.0, -1.0]), part)
        result = cg(da, b, max_iterations=50)
        assert not result.converged  # dᵀAd < 0 triggers the breakdown guard


class TestPreconditionedCG:
    def test_fsai_reduces_iterations(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        plain = cg(da, b)
        pre = build_fsai(mat, part)
        precond = pcg(da, b, precond=pre.apply)
        assert precond.converged
        assert precond.iterations < plain.iterations

    def test_jacobi_preconditioner_converges(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        result = pcg(da, b, precond=jacobi_preconditioner(da))
        assert result.converged
        bg = b.to_global()
        assert residual(mat, result.x.to_global(), bg) <= 1.1e-8 * np.linalg.norm(bg)

    def test_solution_matches_direct_solve(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        pre = build_fsai(mat, part)
        result = pcg(da, b, precond=pre.apply, rtol=1e-12)
        direct = np.linalg.solve(mat.to_dense(), b.to_global())
        assert np.allclose(result.x.to_global(), direct, atol=1e-6)

    def test_paper_protocol_end_to_end(self):
        mat = poisson2d(24)
        part = RowPartition.from_matrix(mat, 4, seed=0)
        da = DistMatrix.from_global(mat, part)
        b = DistVector.from_global(paper_rhs(mat, seed=11), part)
        pre = build_fsai(mat, part)
        result = pcg(da, b, precond=pre.apply, rtol=PAPER_RTOL)
        assert result.converged
        assert result.residual_norms[-1] <= PAPER_RTOL * result.residual_norms[0]

    def test_tracker_records_traffic(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        pre = build_fsai(mat, part)
        tracker = CommTracker()
        result = pcg(da, b, precond=pre.apply, tracker=tracker)
        assert tracker.total_messages > 0
        assert tracker.collective_calls["allreduce"] >= 3 * result.iterations

    def test_spmd_and_bsp_iteration_counts_agree(self, dist_poisson16):
        from repro.dist import spmd_cg

        mat, part, da, b = dist_poisson16
        pre = build_fsai(mat, part)
        bsp = pcg(da, b, precond=pre.apply, rtol=1e-8)
        spmd_x, spmd_iters = spmd_cg(
            da, b, rtol=1e-8, precond_pair=(pre.g, pre.gt)
        )
        assert spmd_iters == bsp.iterations
        assert np.allclose(spmd_x.to_global(), bsp.x.to_global(), atol=1e-10)
