"""Unit tests for machine specs, FLOP counting and the time model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PrecondOptions, FilterSpec, build_fsai, build_fsaie_comm
from repro.dist import DistMatrix, RowPartition
from repro.matgen import poisson2d
from repro.perfmodel import (
    A64FX,
    MACHINES,
    SKYLAKE,
    ZEN2,
    CostModel,
    estimate_solver_time,
    iteration_flops_per_rank,
    precond_flops_per_rank,
    spmv_flops,
)


@pytest.fixture(scope="module")
def setup():
    mat = poisson2d(20)
    part = RowPartition.from_matrix(mat, 4, seed=0)
    da = DistMatrix.from_global(mat, part)
    fsai = build_fsai(mat, part)
    comm = build_fsaie_comm(
        mat, part, PrecondOptions(filter=FilterSpec(0.0, dynamic=False))
    )
    return mat, part, da, fsai, comm


class TestMachines:
    def test_registry(self):
        assert set(MACHINES) == {"skylake", "a64fx", "zen2"}

    def test_paper_cache_lines(self):
        assert SKYLAKE.cache_line_bytes == 64
        assert A64FX.cache_line_bytes == 256
        assert ZEN2.cache_line_bytes == 64

    def test_cores_per_node(self):
        assert SKYLAKE.cores_per_node == 48
        assert ZEN2.cores_per_node == 128


class TestFlops:
    def test_spmv_flops(self):
        assert spmv_flops(100) == 200

    def test_precond_flops(self, setup):
        _, _, _, fsai, _ = setup
        per_rank = precond_flops_per_rank(fsai)
        assert per_rank.sum() == 2 * (fsai.g.nnz + fsai.gt.nnz)

    def test_iteration_flops_include_all_kernels(self, setup):
        mat, _, da, fsai, _ = setup
        with_pre = iteration_flops_per_rank(da, fsai)
        without = iteration_flops_per_rank(da, None)
        assert np.all(with_pre > without)
        assert without.sum() == 2 * mat.nnz + 12 * mat.nrows


class TestCostModel:
    def test_iteration_cost_positive_components(self, setup):
        _, _, da, fsai, _ = setup
        cost = CostModel(SKYLAKE).iteration_cost(da, fsai)
        assert cost.spmv_a > 0
        assert cost.precond > 0
        assert cost.halo > 0
        assert cost.reductions > 0
        assert cost.vector_ops > 0
        assert cost.total == pytest.approx(
            cost.spmv_a + cost.precond + cost.halo + cost.reductions + cost.vector_ops
        )

    def test_no_precond_costs_less(self, setup):
        _, _, da, fsai, _ = setup
        model = CostModel(SKYLAKE)
        assert model.iteration_cost(da, None).total < model.iteration_cost(da, fsai).total

    def test_more_threads_faster_iteration(self, setup):
        _, _, da, fsai, _ = setup
        t1 = CostModel(SKYLAKE, threads_per_process=1).iteration_cost(da, fsai).total
        t8 = CostModel(SKYLAKE, threads_per_process=8).iteration_cost(da, fsai).total
        assert t8 < t1

    def test_extension_costs_little_per_iteration(self, setup):
        """The paper's efficiency claim: FSAIE-Comm's extra entries cost far
        less per iteration than their nnz share, thanks to cache reuse."""
        _, _, da, fsai, comm = setup
        model = CostModel(SKYLAKE)
        base = model.iteration_cost(da, fsai).total
        ext = model.iteration_cost(da, comm).total
        nnz_growth = comm.nnz / fsai.nnz  # >1.5 for unfiltered Poisson
        time_growth = ext / base
        assert time_growth < nnz_growth
        assert time_growth < 1.35

    def test_estimate_solver_time_scales_with_iterations(self, setup):
        _, _, da, fsai, _ = setup
        t100 = estimate_solver_time(100, da, fsai, SKYLAKE)
        t200 = estimate_solver_time(200, da, fsai, SKYLAKE)
        assert t200 == pytest.approx(2 * t100)

    def test_fast_path_without_cache_simulation(self, setup):
        _, _, da, fsai, _ = setup
        fast = CostModel(SKYLAKE, simulate_cache=False).iteration_cost(da, fsai)
        assert fast.total > 0

    def test_precond_gflops_positive_and_bounded(self, setup):
        _, _, _, fsai, _ = setup
        gflops = CostModel(SKYLAKE).precond_gflops_per_rank(fsai)
        assert np.all(gflops > 0)
        assert np.all(gflops <= SKYLAKE.core_flops / 1e9)

    def test_comm_extension_does_not_hurt_gflops(self, setup):
        """Figure 3b's shape: FSAIE-Comm GFLOP/s ≥ FSAI GFLOP/s (roughly)."""
        _, _, _, fsai, comm = setup
        model = CostModel(SKYLAKE)
        base = model.precond_gflops_per_rank(fsai).mean()
        ext = model.precond_gflops_per_rank(comm).mean()
        assert ext >= 0.9 * base

    def test_rejects_bad_thread_count(self):
        with pytest.raises(ValueError):
            CostModel(SKYLAKE, threads_per_process=0)
