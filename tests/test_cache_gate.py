"""Smoke tier for the cache free-ride suite and its reuse gate.

Runs the first grid of :mod:`benchmarks.cache_bench` with full per-line
attribution, then drives ``scripts/check_cache_reuse.py --quick``
end-to-end against the recorded baseline, exactly how CI invokes it.
Carries the ``cache_smoke`` marker — deselect with ``-m "not cache_smoke"``
for a faster tier-1 run.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "benchmarks"))

from cache_bench import LINE_SIZES, run_cache_suite  # noqa: E402


@pytest.mark.cache_smoke
def test_quick_suite_holds_ledger_claims():
    result = run_cache_suite(quick=True)
    assert result["suite"] == "cache"
    assert result["config"]["line_sizes"] == list(LINE_SIZES)
    (doc,) = result["cache"].values()
    assert doc["format"] == "repro-cache-conformance"
    # the paper's Figures 3a/5a story, as gated claim records: extension
    # x-accesses are majority free rides, the fraction does not drop with
    # larger lines, and misses per nonzero stay at or below FSAI
    claims = doc["claims"]
    assert claims and all(c["ok"] for c in claims)
    names = {c["claim"] for c in claims}
    assert names == {
        "free-ride-majority",
        "misses-per-nnz-not-worse",
        "free-ride-rises-with-line-size",
    }
    assert doc["verdicts"] == []
    by_key = {(e["method"], e["line_bytes"]): e for e in doc["entries"]}
    for lb in LINE_SIZES:
        fsai = by_key[("FSAI", lb)]
        assert fsai["ext_accesses"] == 0
        for method in ("FSAIE", "FSAIE-Comm"):
            entry = by_key[(method, lb)]
            assert entry["ext_accesses"] > 0
            assert entry["free_rides"] > entry["ext_accesses"] / 2
            assert entry["misses_per_nnz"] <= fsai["misses_per_nnz"] * 1.05
    summary = result["summary"]
    for method in ("fsai", "fsaie", "comm"):
        for lb in LINE_SIZES:
            for metric in ("nnz", "misses", "misses_per_nnz",
                           "ext_accesses", "free_rides", "free_ride_pct"):
                assert f"g32.{method}.l{lb}.{metric}" in summary


@pytest.mark.cache_smoke
def test_cache_gate_is_clean():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_cache_reuse.py"),
         "--quick"],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        timeout=480,
    )
    assert proc.returncode == 0, (
        f"check_cache_reuse.py --quick failed:\n{proc.stdout}{proc.stderr}"
    )
    assert "OK: extension entries ride recorded cache lines" in proc.stdout
