"""The event-driven engine is a drop-in for the thread engine.

``run_spmd(engine="events")`` hosts rank tasks on small-stack threads
gated by a bounded pool of run slots (see :mod:`repro.mpisim.events`); a
blocked receive parks slot-free on its mailbox condition.  These tests
pin the contract that matters: every collective, the fault-injection
verdicts and the ``mpisim.*`` accounting are *identical* to
``engine="threads"`` — only the scheduling differs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CommError
from repro.instrument import tracing
from repro.mpisim import MAX, SUM, CommTracker, run_spmd
from repro.mpisim.events import EventComm, default_workers
from repro.resilience import (
    FaultPlan,
    MessageDrop,
    MessageDuplicate,
    RankStall,
    fault_injection,
)

SIZE = 8


def run_both(prog, size=SIZE, **kwargs):
    """Run ``prog`` under both engines; return (results, trackers, metrics)."""
    results, trackers, counters = {}, {}, {}
    for engine in ("threads", "events"):
        tracker = CommTracker()
        with tracing() as (_, metrics):
            results[engine] = run_spmd(
                prog, size, tracker=tracker, timeout=30, engine=engine, **kwargs
            )
        trackers[engine] = tracker
        counters[engine] = {
            name: metrics.sum_values(name)
            for name in ("mpisim.messages", "mpisim.bytes")
        }
    return results, trackers, counters


def assert_parity(results, trackers, counters):
    assert results["threads"] == results["events"]
    assert trackers["threads"].snapshot() == trackers["events"].snapshot()
    assert counters["threads"] == counters["events"]


class TestCollectiveParity:
    def test_bcast(self):
        def prog(comm):
            return comm.bcast("payload" if comm.rank == 3 else None, root=3)

        assert_parity(*run_both(prog))

    def test_allreduce(self):
        def prog(comm):
            total = comm.allreduce(np.full(4, float(comm.rank + 1)), SUM)
            return total.tolist()

        assert_parity(*run_both(prog))

    def test_allreduce_max_scalar(self):
        def prog(comm):
            return comm.allreduce(float((comm.rank * 7) % 5), MAX)

        assert_parity(*run_both(prog))

    def test_alltoall(self):
        def prog(comm):
            return comm.alltoall([comm.rank * 100 + d for d in range(comm.size)])

        assert_parity(*run_both(prog))

    def test_reduce_scatter(self):
        def prog(comm):
            chunks = [
                np.full(2, float(comm.rank + d), dtype=np.float64)
                for d in range(comm.size)
            ]
            return comm.reduce_scatter(chunks, SUM).tolist()

        assert_parity(*run_both(prog))

    def test_barrier_and_sendrecv_ring(self):
        def prog(comm):
            comm.barrier()
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            got = comm.sendrecv(comm.rank, dest=right, source=left)
            return got == left

        results, trackers, counters = run_both(prog)
        assert all(results["events"])
        assert_parity(results, trackers, counters)


class TestFaultParity:
    """Fault verdicts are seeded per (src, dst, tag, sequence): the same
    plan must produce the same drops/stalls/duplicates on both engines."""

    def halo_prog(self, comm):
        # a small neighbour exchange, repeated: enough traffic for the
        # probabilistic faults to fire
        total = 0.0
        for step in range(6):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(np.full(8, float(comm.rank + step)), right, tag=step)
            total += float(comm.recv(left, tag=step).sum())
        return total

    def run_with_plan(self, plan, engine):
        tracker = CommTracker()
        with tracing() as (_, metrics):
            with fault_injection(plan) as inj:
                result = run_spmd(
                    self.halo_prog, 4, tracker=tracker, timeout=30, engine=engine
                )
            counts = dict(inj.counts)
        return result, tracker.snapshot(), counts, {
            name: metrics.sum_values(name)
            for name in (
                "mpisim.messages",
                "mpisim.bytes",
                "mpisim.dup_messages",
                "resilience.stalls",
            )
        }

    @pytest.mark.parametrize(
        "plan",
        [
            FaultPlan(seed=11, drops=(MessageDrop(probability=0.2),)),
            FaultPlan(seed=12, duplicates=(MessageDuplicate(probability=0.2),)),
            FaultPlan(seed=13, stalls=(RankStall(rank=1, seconds=0.01, at_update=1),)),
        ],
        ids=["drop", "duplicate", "stall"],
    )
    def test_verdicts_match_thread_engine(self, plan):
        base = self.run_with_plan(plan, "threads")
        event = self.run_with_plan(plan, "events")
        assert base == event
        counts = base[2]
        assert sum(counts.values()) > 0  # the plan actually fired


class TestEventScheduling:
    def test_one_worker_cannot_deadlock(self):
        """With a single run slot, parked receivers must release it or the
        sender whose message they need could never run."""

        def prog(comm):
            if comm.rank == 0:
                return comm.recv(comm.size - 1)
            comm.send(comm.rank, 0) if comm.rank == comm.size - 1 else None
            return None

        out = run_spmd(prog, 4, timeout=15, engine="events", workers=1)
        assert out[0] == 3

    def test_many_ranks_complete_quickly(self):
        def prog(comm):
            return float(comm.allreduce(1.0, SUM))

        out = run_spmd(prog, 256, timeout=60, engine="events")
        assert out == [256.0] * 256

    def test_default_workers_scales_with_size(self):
        assert default_workers(2) == 2
        assert default_workers(10_000) >= 4

    def test_invalid_workers_rejected(self):
        with pytest.raises(CommError, match="workers"):
            run_spmd(lambda comm: None, 2, engine="events", workers=0)

    def test_unknown_engine_rejected(self):
        with pytest.raises(CommError, match="engine"):
            run_spmd(lambda comm: None, 2, engine="fibers")

    def test_event_comm_is_exported(self):
        import repro.mpisim as m

        assert m.EventComm is EventComm
