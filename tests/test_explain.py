"""Tests for the performance-attribution explainer (:mod:`repro.observe.explain`).

Each suspect rule is exercised in isolation on hand-built facts, then the
live path (duck-typed ``MethodFacts.from_objects`` over real preconditioner
and solve objects) is checked to produce a clean verdict on the acceptance
stencil — the same fact ``repro explain`` and ``scripts/check_critical_path.py``
report.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.core.cg import pcg
from repro.core.precond import build_fsai, build_fsaie_comm
from repro.observe import (
    AttributionVerdict,
    ExplainError,
    MethodFacts,
    Suspect,
    attribute,
)


def facts(method="FSAI", iterations=30, **kw):
    defaults = dict(converged=True, nnz=1000, base_nnz=1000,
                    nnz_per_rank=[250, 250, 250, 250])
    defaults.update(kw)
    return MethodFacts(method=method, iterations=iterations, **defaults)


class TestSuspectRules:
    def test_clean_verdict(self):
        verdict = attribute([
            facts(),
            facts("FSAIE-Comm", 25, nnz=1400),
        ])
        assert verdict.suspects == []
        assert "suspects: clean" in verdict.headline

    def test_no_convergence(self):
        verdict = attribute([facts(converged=False)])
        assert [s.name for s in verdict.suspects] == ["no-convergence"]

    def test_ineffective_extension(self):
        verdict = attribute([facts(), facts("FSAIE", 30, nnz=1500)])
        names = [s.name for s in verdict.suspects]
        assert names == ["ineffective-extension"]
        assert verdict.suspects[0].method == "FSAIE"
        assert "no iteration reduction" in verdict.suspects[0].detail

    def test_load_imbalance(self):
        verdict = attribute([facts(nnz_per_rank=[100, 100, 100, 400])])
        assert [s.name for s in verdict.suspects] == ["load-imbalance"]

    def test_model_divergence_names_dominant_component(self):
        verdict = attribute([
            facts(
                modeled_seconds=1.0,
                measured_seconds=2.0,
                modeled_breakdown={"spmv_a": 0.7, "halo": 0.3},
            )
        ])
        assert [s.name for s in verdict.suspects] == ["model-divergence"]
        assert "spmv_a" in verdict.suspects[0].detail

    def test_model_within_tolerance_is_clean(self):
        verdict = attribute([
            facts(modeled_seconds=1.0, measured_seconds=1.3)
        ])
        assert verdict.suspects == []

    def test_cache_reuse_not_realized(self):
        verdict = attribute([
            facts(misses_total=1000.0),
            facts("FSAIE", 25, nnz=1500, misses_total=1500.0),
        ])
        assert [s.name for s in verdict.suspects] == ["cache-reuse-not-realized"]

    def test_comm_invariance_violated(self):
        verdict = attribute([
            facts(),
            facts("FSAIE-Comm", 25, nnz=1400, invariant=False),
        ])
        assert [s.name for s in verdict.suspects] == ["comm-invariance-violated"]


class TestVerdict:
    def test_iteration_reduction_percent(self):
        verdict = attribute([facts(iterations=30), facts("FSAIE-Comm", 24)])
        assert verdict.iteration_reduction_percent("FSAIE-Comm") == pytest.approx(20.0)
        assert verdict.iteration_reduction_percent("missing") is None

    def test_headline_mentions_every_method(self):
        verdict = attribute([
            facts(), facts("FSAIE", 27, nnz=1300), facts("FSAIE-Comm", 25, nnz=1400),
        ])
        for token in ("FSAI:", "FSAIE:", "FSAIE-Comm:", "+10.0%"):
            assert token in verdict.headline

    def test_render_lists_suspects(self):
        verdict = attribute([facts(converged=False)])
        text = verdict.render()
        assert "no-convergence" in text
        assert "attribution verdict" in text
        clean = attribute([facts()]).render()
        assert "suspects: none" in clean

    def test_roundtrip(self, tmp_path):
        verdict = attribute(
            [facts(misses_total=10.0), facts("FSAIE", 40, nnz=1500)],
            meta={"case": "t"},
        )
        path = verdict.save(tmp_path / "v.json")
        back = AttributionVerdict.load(path)
        assert back.meta == {"case": "t"}
        assert [f.to_dict() for f in back.facts] == [
            f.to_dict() for f in verdict.facts
        ]
        assert back.suspects == verdict.suspects
        assert back.headline == verdict.headline

    def test_rejects_wrong_format_and_newer_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "nope"}))
        with pytest.raises(ExplainError, match="not an attribution"):
            AttributionVerdict.load(bad)
        newer = tmp_path / "newer.json"
        newer.write_text(
            json.dumps({"format": "repro-attribution", "version": 99})
        )
        with pytest.raises(ExplainError, match="version 99"):
            AttributionVerdict.load(newer)

    def test_missing_file_is_explain_error(self, tmp_path):
        with pytest.raises(ExplainError, match="cannot read"):
            AttributionVerdict.load(tmp_path / "absent.json")


class TestFromObjects:
    def test_duck_typed_builder(self):
        pre = SimpleNamespace(
            name="FSAIE", nnz=1500, base_nnz=1000,
            nnz_per_rank=lambda: [375, 375, 375, 375],
        )
        result = SimpleNamespace(iterations=25, converged=True)
        cost = SimpleNamespace(
            spmv_a=1e-6, precond=2e-6, halo=5e-7, reductions=1e-7,
            vector_ops=2e-7, total=3.8e-6,
        )
        f = MethodFacts.from_objects(pre, result, cost=cost, misses=[5.0, 6.0])
        assert f.method == "FSAIE"
        assert f.extra_nnz_percent == pytest.approx(50.0)
        assert f.modeled_seconds == pytest.approx(25 * 3.8e-6)
        assert f.modeled_breakdown["precond"] == pytest.approx(2e-6)
        assert f.misses_total == pytest.approx(11.0)
        assert f.imbalance == pytest.approx(1.0)

    def test_acceptance_stencil_verdict_is_clean(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        fsai = build_fsai(mat, part)
        comm = build_fsaie_comm(mat, part)
        res_fsai = pcg(da, b, precond=fsai)
        res_comm = pcg(da, b, precond=comm)
        verdict = attribute([
            MethodFacts.from_objects(fsai, res_fsai),
            MethodFacts.from_objects(comm, res_comm, invariant=True),
        ])
        reduction = verdict.iteration_reduction_percent("FSAIE-Comm")
        assert reduction is not None and reduction > 0
        assert not [s for s in verdict.suspects if s.method == "FSAIE-Comm"]
