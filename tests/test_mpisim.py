"""Unit tests for the simulated MPI runtime: engine, collectives, tracker."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import CommError
from repro.mpisim import (
    ANY_TAG,
    MAX,
    MIN,
    SUM,
    CommTracker,
    ReduceOp,
    SelfComm,
    payload_nbytes,
    run_spmd,
)

SIZES = [1, 2, 3, 4, 5, 7, 8]


class TestEngine:
    def test_returns_per_rank_results(self):
        assert run_spmd(lambda comm: comm.rank * 10, 4) == [0, 10, 20, 30]

    def test_exception_propagates_with_rank(self):
        def prog(comm):
            if comm.rank == 2:
                raise ValueError("boom")
            return comm.rank

        with pytest.raises(CommError, match="rank 2"):
            run_spmd(prog, 4, timeout=5)

    def test_point_to_point_order(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send("a", 1, tag=1)
                comm.send("b", 1, tag=2)
                return None
            if comm.rank == 1:
                # receive out of order by tag
                b = comm.recv(0, tag=2)
                a = comm.recv(0, tag=1)
                return (a, b)
            return None

        assert run_spmd(prog, 2, timeout=5)[1] == ("a", "b")

    def test_any_tag(self):
        def prog(comm):
            if comm.rank == 0:
                comm.send(42, 1, tag=7)
                return None
            return comm.recv(0, ANY_TAG)

        assert run_spmd(prog, 2, timeout=5)[1] == 42

    def test_send_copies_numpy_payload(self):
        def prog(comm):
            if comm.rank == 0:
                buf = np.ones(4)
                comm.send(buf, 1)
                buf[:] = -1.0  # mutation after send must not corrupt
                return None
            return comm.recv(0)

        assert np.allclose(run_spmd(prog, 2, timeout=5)[1], 1.0)

    def test_recv_timeout_reports_deadlock(self):
        def prog(comm):
            if comm.rank == 0:
                return comm.recv(1, timeout=0.2)  # nobody sends
            return None

        with pytest.raises(CommError, match="timed out"):
            run_spmd(prog, 2, timeout=5)

    def test_self_messaging_rejected(self):
        def prog(comm):
            comm.send(1, comm.rank)

        with pytest.raises(CommError):
            run_spmd(prog, 2, timeout=5)

    def test_bad_peer_rejected(self):
        def prog(comm):
            comm.send(1, 99)

        with pytest.raises(CommError):
            run_spmd(prog, 2, timeout=5)

    def test_zero_size_rejected(self):
        with pytest.raises(CommError):
            run_spmd(lambda comm: None, 0)


class TestCollectives:
    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_sum_scalar(self, size):
        results = run_spmd(lambda c: c.allreduce(c.rank + 1, SUM), size, timeout=10)
        assert results == [size * (size + 1) // 2] * size

    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_array(self, size):
        def prog(comm):
            return comm.allreduce(np.full(3, float(comm.rank)), SUM)

        for r in run_spmd(prog, size, timeout=10):
            assert np.allclose(r, sum(range(size)))

    @pytest.mark.parametrize("size", SIZES)
    def test_allreduce_max_min(self, size):
        assert run_spmd(lambda c: c.allreduce(c.rank, MAX), size, timeout=10) == [size - 1] * size
        assert run_spmd(lambda c: c.allreduce(c.rank, MIN), size, timeout=10) == [0] * size

    @pytest.mark.parametrize("size", SIZES)
    @pytest.mark.parametrize("root", [0, -1])
    def test_bcast(self, size, root):
        root = root % size

        def prog(comm):
            return comm.bcast({"v": 7} if comm.rank == root else None, root=root)

        assert run_spmd(prog, size, timeout=10) == [{"v": 7}] * size

    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_only_root_gets_result(self, size):
        root = size - 1

        def prog(comm):
            return comm.reduce(comm.rank + 1, SUM, root=root)

        results = run_spmd(prog, size, timeout=10)
        assert results[root] == size * (size + 1) // 2
        assert all(r is None for i, r in enumerate(results) if i != root)

    @pytest.mark.parametrize("size", SIZES)
    def test_gather_scatter(self, size):
        def prog(comm):
            gathered = comm.gather(comm.rank**2, root=0)
            values = [v * 10 for v in gathered] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        assert run_spmd(prog, size, timeout=10) == [10 * r * r for r in range(size)]

    @pytest.mark.parametrize("size", SIZES)
    def test_allgather(self, size):
        results = run_spmd(lambda c: c.allgather(c.rank), size, timeout=10)
        assert results == [list(range(size))] * size

    @pytest.mark.parametrize("size", SIZES)
    def test_alltoall(self, size):
        def prog(comm):
            return comm.alltoall([comm.rank * 100 + j for j in range(size)])

        results = run_spmd(prog, size, timeout=10)
        for r, row in enumerate(results):
            assert row == [j * 100 + r for j in range(size)]

    @pytest.mark.parametrize("size", SIZES)
    def test_barrier_completes(self, size):
        def prog(comm):
            comm.barrier()
            return True

        assert all(run_spmd(prog, size, timeout=10))

    def test_float_allreduce_deterministic_across_ranks(self):
        def prog(comm):
            rng = np.random.default_rng(comm.rank)
            return comm.allreduce(float(rng.standard_normal()), SUM)

        results = run_spmd(prog, 7, timeout=10)
        assert all(r == results[0] for r in results)

    def test_custom_reduce_op(self):
        concat = ReduceOp("concat", lambda a, b: a + b)
        results = run_spmd(lambda c: c.allreduce([c.rank], concat), 4, timeout=10)
        for r in results:
            assert sorted(r) == [0, 1, 2, 3]


class TestSelfComm:
    def test_collectives_are_local(self):
        comm = SelfComm()
        assert comm.allreduce(5, SUM) == 5
        assert comm.bcast("x") == "x"
        assert comm.allgather(3) == [3]
        assert comm.gather(2) == [2]
        comm.barrier()

    def test_p2p_rejected(self):
        comm = SelfComm()
        with pytest.raises(CommError):
            comm.send(1, 0)
        with pytest.raises(CommError):
            comm.recv(0)


class TestTracker:
    def test_records_messages(self):
        tracker = CommTracker()

        def prog(comm):
            if comm.rank == 0:
                comm.send(np.ones(10), 1)
            elif comm.rank == 1:
                comm.recv(0)

        run_spmd(prog, 2, tracker=tracker, timeout=5)
        assert tracker.p2p_messages[(0, 1)] == 1
        assert tracker.p2p_bytes[(0, 1)] == 80
        assert tracker.total_messages == 1
        assert tracker.edges() == {(0, 1)}

    def test_reset_and_snapshot(self):
        tracker = CommTracker()
        tracker.record_p2p(0, 1, 8)
        tracker.record_collective("allreduce", 16)
        snap = tracker.snapshot()
        assert snap["p2p_messages"] == {(0, 1): 1}
        assert snap["collective_calls"] == {"allreduce": 1}
        tracker.reset()
        assert tracker.total_messages == 0

    def test_same_edges(self):
        a, b = CommTracker(), CommTracker()
        a.record_p2p(0, 1, 8)
        b.record_p2p(0, 1, 800)  # different volume, same edge
        assert a.same_edges(b)
        b.record_p2p(1, 0, 8)
        assert not a.same_edges(b)

    def test_payload_nbytes(self):
        assert payload_nbytes(np.zeros(5)) == 40
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes((1, 2, 3)) == 24
        assert payload_nbytes({"a": 1}) > 0

    def test_payload_nbytes_unpicklable_raises(self):
        # regression: used to silently return 0, undercounting traffic and
        # defeating the byte-for-byte communication-invariance checks
        unpicklable = lambda: None  # noqa: E731 — local lambdas don't pickle
        with pytest.raises(CommError, match="not picklable"):
            payload_nbytes(unpicklable)
        with pytest.raises(CommError):
            payload_nbytes(threading.Lock())


class TestScanReduceScatter:
    @pytest.mark.parametrize("size", SIZES)
    def test_scan_prefix_sums(self, size):
        results = run_spmd(lambda c: c.scan(c.rank + 1, SUM), size, timeout=10)
        assert results == [sum(range(1, r + 2)) for r in range(size)]

    @pytest.mark.parametrize("size", SIZES)
    def test_reduce_scatter(self, size):
        def prog(comm):
            return comm.reduce_scatter(
                [comm.rank * 100 + j for j in range(comm.size)], SUM
            )

        results = run_spmd(prog, size, timeout=10)
        for r, got in enumerate(results):
            assert got == sum(s * 100 + r for s in range(size))

    def test_reduce_scatter_needs_full_list(self):
        def prog(comm):
            comm.reduce_scatter([1], SUM)

        with pytest.raises(CommError):
            run_spmd(prog, 3, timeout=5)

    def test_scan_max(self):
        values = [3, 1, 4, 1, 5]

        def prog(comm):
            return comm.scan(values[comm.rank], MAX)

        assert run_spmd(prog, 5, timeout=10) == [3, 3, 4, 4, 5]

    def test_selfcomm_scan(self):
        from repro.mpisim import SelfComm

        comm = SelfComm()
        assert comm.scan(7, SUM) == 7
        assert comm.reduce_scatter([9], SUM) == 9
