"""Unit tests for metrics, table formatting and histogram rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    best_per_matrix,
    format_histogram_pair,
    format_kv,
    format_table,
    histogram_series,
    pct_decrease,
    pct_increase,
    summarize_improvements,
)


class TestMetrics:
    def test_pct_decrease(self):
        assert pct_decrease(100.0, 80.0) == pytest.approx(20.0)
        assert pct_decrease(100.0, 120.0) == pytest.approx(-20.0)
        assert pct_decrease(0.0, 5.0) == 0.0

    def test_pct_increase(self):
        assert pct_increase(100.0, 119.0) == pytest.approx(19.0)
        assert pct_increase(0.0, 5.0) == 0.0

    def test_summary_matches_paper_semantics(self):
        base_iters = np.array([100, 200, 400])
        base_times = np.array([1.0, 2.0, 4.0])
        new_iters = np.array([80, 150, 440])
        new_times = np.array([0.8, 1.6, 4.4])
        s = summarize_improvements(base_iters, base_times, new_iters, new_times)
        assert s.avg_iterations == pytest.approx((20 + 25 - 10) / 3)
        assert s.avg_time == pytest.approx((20 + 20 - 10) / 3)
        assert s.highest_improvement == pytest.approx(20.0)
        assert s.highest_degradation == pytest.approx(-10.0)
        assert len(s.row()) == 4

    def test_best_per_matrix(self):
        times = {
            0.01: np.array([1.0, 5.0, 3.0]),
            0.1: np.array([2.0, 4.0, 1.0]),
        }
        assert np.allclose(best_per_matrix(times), [1.0, 4.0, 1.0])


class TestTables:
    def test_format_table_alignment(self):
        out = format_table(
            ["Matrix", "Iter"], [["thermal2", 123], ["x", 4]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "Matrix" in lines[1]
        assert lines[2].startswith("-")
        assert lines[3].startswith("thermal2")
        assert lines[3].rstrip().endswith("123")

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_format_table_empty(self):
        out = format_table(["a"], [])
        assert "a" in out

    def test_format_kv(self):
        out = format_kv({"avg": 1.5, "worst": -2}, title="Summary")
        assert out.splitlines()[0] == "Summary"
        assert "avg" in out and "worst" in out


class TestHistograms:
    def test_histogram_series(self):
        edges, counts = histogram_series(np.array([0.0, 0.5, 1.0]), bins=2)
        assert counts.sum() == 3
        assert edges.size == 3

    def test_format_histogram_pair_shared_bins(self):
        rng = np.random.default_rng(0)
        a = rng.normal(1.0, 0.1, 50)
        b = rng.normal(2.0, 0.1, 50)
        out = format_histogram_pair("fsai", a, "comm", b, bins=5, title="H")
        lines = out.splitlines()
        assert lines[0] == "H"
        assert len(lines) == 2 + 5 + 1  # title, header, bins, means
        assert "mean" in lines[-1]

    def test_format_histogram_degenerate_values(self):
        a = np.full(5, 3.0)
        out = format_histogram_pair("x", a, "y", a, bins=3)
        assert "mean" in out
