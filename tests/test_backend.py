"""Array-backend selection, fallback and capability-threading tests.

Marked ``backend_smoke`` so the backend layer can be exercised alone::

    PYTHONPATH=src python -m pytest -m backend_smoke -q

Everything here must pass on a NumPy-only machine: the CuPy cases assert the
documented *fallback* behaviour (single warning, NumPy namespace returned),
not GPU execution.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import ArrayBackend, get_backend
from repro.backend import (
    BackendFallbackWarning,
    available_backends,
    numpy_backend,
    reset_backend_cache,
)
from repro.errors import BackendError
from repro.kernels.plan import SpMVPlan
from repro.matgen import poisson2d
from repro.sparse import CSRMatrix

pytestmark = pytest.mark.backend_smoke

CUPY_PRESENT = "cupy" in available_backends()


@pytest.fixture(autouse=True)
def _fresh_backend_cache():
    reset_backend_cache()
    yield
    reset_backend_cache()


class TestGetBackend:
    def test_default_is_numpy(self):
        backend = get_backend()
        assert backend.name == "numpy"
        assert backend.xp is np
        assert not backend.is_gpu
        assert backend.supports_reduceat
        assert backend.supports_batched_solve

    def test_none_and_name_agree(self):
        assert get_backend(None) is get_backend("numpy")

    def test_instances_pass_through(self):
        backend = numpy_backend()
        assert get_backend(backend) is backend

    def test_case_insensitive(self):
        assert get_backend("NumPy").name == "numpy"

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("tpu")

    def test_non_string_raises(self):
        with pytest.raises(TypeError, match="name or ArrayBackend"):
            get_backend(42)

    def test_cached_per_name(self):
        assert get_backend("numpy") is get_backend("numpy")

    @pytest.mark.skipif(CUPY_PRESENT, reason="requires a machine without CuPy")
    def test_cupy_falls_back_with_single_warning(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = get_backend("cupy")
            second = get_backend("cupy")
        assert first.name == "numpy"
        assert second is first
        fallback = [w for w in caught if issubclass(w.category, BackendFallbackWarning)]
        assert len(fallback) == 1
        assert "falling back to numpy" in str(fallback[0].message)

    @pytest.mark.skipif(CUPY_PRESENT, reason="requires a machine without CuPy")
    def test_auto_is_silent_on_fallback(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            backend = get_backend("auto")
        assert backend.name == "numpy"
        assert not [
            w for w in caught if issubclass(w.category, BackendFallbackWarning)
        ]

    def test_available_backends_always_has_numpy(self):
        assert "numpy" in available_backends()


class TestArrayBackend:
    def test_roundtrip_is_identity_on_numpy(self):
        backend = numpy_backend()
        x = np.arange(4.0)
        assert backend.to_device(x) is not None
        assert backend.from_device(backend.to_device(x)) is x

    def test_asarray_dtype(self):
        backend = numpy_backend()
        out = backend.asarray([1, 2], dtype=np.float32)
        assert out.dtype == np.float32

    def test_is_native(self):
        backend = numpy_backend()
        assert backend.is_native(np.zeros(1))
        assert not backend.is_native([0.0])

    def test_synchronize_is_noop_on_host(self):
        numpy_backend().synchronize()

    def test_frozen(self):
        backend = numpy_backend()
        with pytest.raises(AttributeError):
            backend.name = "other"


class TestCapabilityGates:
    def test_plan_rejects_wide_rows_without_reduceat(self):
        # a dense-ish row wider than ELL_MAX_WIDTH forces the reduceat path
        n = 12
        dense = np.zeros((n, n))
        dense[0, :] = 1.0
        dense[np.arange(n), np.arange(n)] = 2.0
        mat = CSRMatrix.from_dense(dense)
        crippled = ArrayBackend(name="numpy", xp=np, supports_reduceat=False)
        with pytest.raises(BackendError, match="reduceat"):
            SpMVPlan(mat, backend=crippled)

    def test_plan_accepts_narrow_rows_without_reduceat(self):
        mat = poisson2d(8)  # 5-point stencil: every row fits the ELL layout
        crippled = ArrayBackend(name="numpy", xp=np, supports_reduceat=False)
        plan = SpMVPlan(mat, backend=crippled)
        x = np.ones(mat.ncols)
        assert np.allclose(plan.spmv(x), mat.spmv(x))
        assert np.allclose(plan.spmv_t(x), mat.spmv_transpose(x))

    def test_plan_backend_name_threads_through(self):
        plan = SpMVPlan(poisson2d(6), backend="numpy")
        assert plan.backend.name == "numpy"
