"""Tests for cross-rank timeline reconstruction (:mod:`repro.observe.timeline`).

The synthetic-span tests pin the two arithmetic invariants of the merge:

* *flattening conservation* — merged total busy time equals the sum of the
  per-rank top-level (non-scaffold) span durations exactly, because child
  self-time is carved out of its parent, never double-counted;
* *critical-path bracketing* — the longest dependency chain is at least the
  busiest rank's busy time (program order alone is a valid chain) and at
  most the makespan (chained contributions are truncated to disjoint
  intervals).

The SPMD test (marked ``timeline_smoke``) checks both on a real traced
:func:`repro.dist.spmd.spmd_cg` run, plus the static
:func:`halo_critical_path` identity between FSAI and FSAIE-Comm that CI
gates via ``scripts/check_critical_path.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.core.precond import build_fsai, build_fsaie_comm
from repro.instrument import tracing
from repro.observe import (
    CommEdge,
    HaloCriticalPath,
    Segment,
    Timeline,
    TimelineError,
    bsp_wait_times,
    classify_segment,
    halo_critical_path,
)


def span(name, start, end, *, sid, parent=None, thread=0, **tags):
    """A raw span dict in the exporter's shape."""
    return {
        "name": name,
        "tags": tags,
        "start": start,
        "end": end,
        "duration": (end - start) if end is not None else 0.0,
        "span_id": sid,
        "parent_id": parent,
        "thread": thread,
    }


def two_rank_spans():
    """Two rank streams with one cross-rank halo dependency.

    rank 0: compute [0,3], then sends at t=3 (instant event)
    rank 1: compute [0,1], wait [1,3.5] released by rank 0's send,
            compute [3.5,4]
    """
    return [
        span("spmd.rank", 0.0, 4.0, sid=1, thread=10, rank=0),
        span("spmd.compute", 0.0, 3.0, sid=2, parent=1, thread=10, rank=0,
             kernel="spmv"),
        span("mpisim.send", 3.0, None, sid=3, parent=1, thread=10,
             src=0, dst=1, bytes=64),
        span("spmd.rank", 0.0, 4.0, sid=4, thread=11, rank=1),
        span("spmd.compute", 0.0, 1.0, sid=5, parent=4, thread=11, rank=1),
        span("spmd.halo.wait", 1.0, 3.5, sid=6, parent=4, thread=11, rank=1,
             src=0, bytes=64),
        span("spmd.compute", 3.5, 4.0, sid=7, parent=4, thread=11, rank=1),
    ]


class TestClassification:
    def test_kind_rules(self):
        assert classify_segment("spmd.halo.wait") == "wait"
        assert classify_segment("mpisim.wait") == "wait"
        assert classify_segment("spmd.halo.pack") == "pack"
        assert classify_segment("mpisim.allreduce") == "reduction"
        assert classify_segment("spmd.reduction") == "reduction"
        assert classify_segment("spmd.compute") == "compute"
        assert classify_segment("precond.factor") == "compute"


class TestMergeInvariants:
    def test_busy_equals_sum_of_top_level_spans(self):
        tl = Timeline.from_spans(two_rank_spans())
        busy = tl.busy_seconds()
        # rank 0: one 3 s compute; rank 1: 1 + 2.5 + 0.5 s
        assert busy[0] == pytest.approx(3.0)
        assert busy[1] == pytest.approx(4.0)
        # conservation: total busy == sum of non-scaffold span durations
        spans = [d for d in two_rank_spans()
                 if d["name"].startswith("spmd.") and d["name"] != "spmd.rank"]
        assert sum(busy.values()) == pytest.approx(
            sum(d["duration"] for d in spans)
        )

    def test_self_time_flattening_carves_out_children(self):
        spans = [
            span("spmd.rank", 0.0, 10.0, sid=1, thread=5, rank=0),
            span("outer", 0.0, 10.0, sid=2, parent=1, thread=5, rank=0),
            span("inner", 2.0, 5.0, sid=3, parent=2, thread=5, rank=0),
        ]
        tl = Timeline.from_spans(spans)
        # outer contributes [0,2] and [5,10]; inner [2,5]; total stays 10
        assert tl.busy_seconds(0) == pytest.approx(10.0)
        outer = sorted(
            (s.start, s.end) for s in tl.segments if s.name == "outer"
        )
        assert outer == [(0.0, 2.0), (5.0, 10.0)]

    def test_scaffold_and_instant_spans_are_excluded(self):
        tl = Timeline.from_spans(two_rank_spans())
        names = {s.name for s in tl.segments}
        assert "spmd.rank" not in names
        assert "mpisim.send" not in names
        assert len(tl.edges) == 1 and tl.edges[0] == CommEdge(0, 1, 64, 3.0)

    def test_rank_attribution_falls_back_to_thread_window(self):
        spans = [
            span("spmd.rank", 0.0, 4.0, sid=1, thread=7, rank=2),
            # no rank tag, no parent chain — only the thread window places it
            span("spmd.compute", 1.0, 2.0, sid=9, thread=7),
        ]
        tl = Timeline.from_spans(spans)
        assert [s.rank for s in tl.segments] == [2]

    def test_wait_histogram_and_slack(self):
        tl = Timeline.from_spans(two_rank_spans())
        wait = tl.wait_histogram()
        assert wait[0] == 0.0
        assert wait[1] == pytest.approx(2.5)
        slack = tl.slack_seconds()
        assert slack[0] == pytest.approx(1.0)  # makespan 4 − busy 3
        assert slack[1] == pytest.approx(0.0)


class TestCriticalPath:
    def test_bracketing_on_synthetic_chain(self):
        tl = Timeline.from_spans(two_rank_spans())
        cp = tl.critical_path()
        assert max(tl.busy_seconds().values()) <= cp.length + 1e-12
        assert cp.length <= tl.makespan + 1e-12
        # rank 1's full stream is the longest chain: exactly the makespan
        assert cp.length == pytest.approx(4.0)

    def test_cross_rank_edge_appears_on_path(self):
        # rank 0's work must dominate rank 1's pre-wait chain so the longest
        # path hops ranks: rank 1 starts late (0.2) while rank 0 computes
        # until 3.4 and only then releases the wait
        spans = two_rank_spans()
        spans[1]["end"] = 3.4  # compute [0,3.4] on rank 0
        spans[2]["start"] = 3.4  # send at 3.4
        spans[4]["start"] = 0.2  # rank 1 compute [0.2,1.0]
        tl = Timeline.from_spans(spans)
        cp = tl.critical_path()
        assert {s.rank for s in cp.segments} == {0, 1}
        assert len(cp.edges) == 1
        assert (cp.edges[0].src, cp.edges[0].dst) == (0, 1)
        assert cp.edges[0].wait_seconds == pytest.approx(2.5)

    def test_top_edges_ranked_by_blocked_time(self):
        from repro.observe import CriticalPath

        e1 = CommEdge(0, 1, 8, 0.0, wait_seconds=0.1)
        e2 = CommEdge(2, 1, 800, 0.0, wait_seconds=0.4)
        cp = CriticalPath(edges=[e1, e2])
        assert cp.top_edges(1) == [e2]

    def test_empty_timeline(self):
        tl = Timeline([])
        assert tl.critical_path().length == 0.0
        assert tl.makespan == 0.0
        assert tl.render_gantt() == "(empty timeline)"


class TestPersistence:
    def test_roundtrip_preserves_analysis(self, tmp_path):
        tl = Timeline.from_spans(two_rank_spans(), meta={"case": "synthetic"})
        path = tl.save(tmp_path / "t.json")
        back = Timeline.load(path)
        assert back.meta["case"] == "synthetic"
        assert back.segments == tl.segments
        assert back.edges == tl.edges
        assert back.critical_path().length == pytest.approx(
            tl.critical_path().length
        )

    def test_rejects_non_monotonic_document(self, tmp_path):
        tl = Timeline.from_spans(two_rank_spans())
        doc = tl.to_dict()
        doc["segments"][0], doc["segments"][-1] = (
            doc["segments"][-1],
            doc["segments"][0],
        )
        path = tmp_path / "tampered.json"
        path.write_text(json.dumps(doc))
        with pytest.raises(TimelineError, match="non-monotonic"):
            Timeline.load(path)

    def test_rejects_negative_duration(self):
        with pytest.raises(TimelineError, match="ends before it starts"):
            Timeline([Segment(0, "x", "compute", 2.0, 1.0)])

    def test_rejects_wrong_format_and_version(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(TimelineError, match="not a timeline"):
            Timeline.load(bad)
        newer = tmp_path / "newer.json"
        newer.write_text(
            json.dumps({"format": "repro-timeline", "version": 99, "segments": []})
        )
        with pytest.raises(TimelineError, match="version 99"):
            Timeline.load(newer)

    def test_missing_file_is_timeline_error(self, tmp_path):
        with pytest.raises(TimelineError, match="cannot read"):
            Timeline.load(tmp_path / "absent.json")

    def test_load_dispatches_trace_documents(self, tmp_path):
        doc = {"format": "repro-trace", "version": 1, "spans": two_rank_spans()}
        path = tmp_path / "trace.json"
        path.write_text(json.dumps(doc))
        tl = Timeline.load(path)
        assert tl.ranks == [0, 1]


class TestRendering:
    def test_gantt_has_one_row_per_rank(self):
        tl = Timeline.from_spans(two_rank_spans())
        chart = tl.render_gantt(width=40)
        lines = chart.splitlines()
        assert lines[0].startswith("timeline: 2 ranks")
        assert sum(1 for line in lines if line.startswith("rank ")) == 2
        assert "legend:" in lines[-1]
        # rank 1 spent most of its time blocked — W must appear in its row
        rank1 = next(line for line in lines if line.startswith("rank  1"))
        assert "W" in rank1

    def test_summary_shape(self):
        tl = Timeline.from_spans(two_rank_spans())
        s = tl.summary()
        assert s["ranks"] == 2
        assert s["total_busy_seconds"] == pytest.approx(7.0)
        assert s["max_wait_seconds"] == pytest.approx(2.5)
        assert s["critical_path"]["length_seconds"] == pytest.approx(4.0)


class TestStaticHaloPath:
    def test_fsai_and_comm_schedules_identical(self, dist_poisson16):
        mat, part, _, _ = dist_poisson16
        fsai = build_fsai(mat, part)
        comm = build_fsaie_comm(mat, part)
        for attr in ("g", "gt"):
            base = halo_critical_path(getattr(fsai, attr).schedule)
            ext = halo_critical_path(getattr(comm, attr).schedule)
            assert isinstance(base, HaloCriticalPath)
            assert base == ext  # edge-for-edge, byte-for-byte
            assert base.total_bytes == sum(b for _, _, b in base.edges)
            assert str(base.rank) in base.render()

    def test_bsp_wait_times(self):
        waits = bsp_wait_times([10.0, 30.0, 20.0])
        assert waits == [20.0, 0.0, 10.0]
        assert bsp_wait_times([]) == []


@pytest.mark.timeline_smoke
class TestSpmdReconstruction:
    def test_spmd_cg_timeline_invariants(self, dist_poisson16):
        from repro.dist.spmd import spmd_cg

        mat, part, da, b = dist_poisson16
        pre = build_fsaie_comm(mat, part)
        with tracing() as (tracer, _):
            _, iterations = spmd_cg(
                da, b, precond_pair=(pre.g, pre.gt), max_iterations=200
            )
        tl = Timeline.from_tracer(tracer, meta={"iterations": iterations})
        assert tl.ranks == [0, 1, 2, 3]
        assert set(tl.offsets) == {0, 1, 2, 3}
        kinds = {s.kind for s in tl.segments}
        assert {"compute", "pack", "wait", "reduction"} <= kinds
        cp = tl.critical_path()
        max_busy = max(tl.busy_seconds().values())
        assert max_busy <= cp.length + 1e-9
        assert cp.length <= tl.makespan + 1e-9
        # halo traffic was recorded as cross-rank edges
        assert tl.edges and all(e.src != e.dst for e in tl.edges)


class TestFromSpansValidation:
    def test_empty_stream_raises_named_error(self):
        with pytest.raises(TimelineError, match=r"span stream '<spans>' is empty"):
            Timeline.from_spans([])

    def test_empty_stream_names_meta_source(self):
        with pytest.raises(TimelineError, match="trace-7"):
            Timeline.from_spans([], meta={"source": "trace-7"})

    def test_malformed_span_is_named_not_keyerror(self):
        bad = [{"name": "spmd.compute", "tags": {"rank": 0}}]  # no "start"
        with pytest.raises(TimelineError, match=r"span #0 .*spmd.compute"):
            Timeline.from_spans(bad)

    def test_non_dict_span_is_rejected(self):
        with pytest.raises(TimelineError, match="span #1"):
            Timeline.from_spans([span("spmd.rank", 0, 1, sid=1, rank=0),
                                 "not a span"])

    def test_rankless_stream_raises_clean_error(self):
        rankless = [span("startup", 0.0, 1.0, sid=1, thread=5)]
        with pytest.raises(TimelineError, match="no rank-attributable spans"):
            Timeline.from_spans(rankless, meta={"label": "boot-trace"})

    def test_telemetry_channel_spans_are_excluded(self):
        spans = two_rank_spans()
        spans.append(span("mpisim.send", 3.2, None, sid=8, parent=1,
                          thread=10, src=0, dst=1, bytes=9999,
                          channel="telemetry"))
        spans.append(span("spmd.compute", 3.2, 3.4, sid=9, parent=1,
                          thread=10, rank=0, channel="telemetry"))
        with_telemetry = Timeline.from_spans(spans)
        bare = Timeline.from_spans(two_rank_spans())
        # the telemetry send created no comm edge, the telemetry span no
        # segment: the solver timeline is byte-identical
        assert len(with_telemetry.edges) == len(bare.edges)
        assert len(with_telemetry.segments) == len(bare.segments)
        assert with_telemetry.busy_seconds() == bare.busy_seconds()


def many_rank_spans(nranks=6):
    """One compute + increasing wait per rank: rank r waits r seconds."""
    spans = []
    for r in range(nranks):
        sid = 10 * r + 1
        spans.append(span("spmd.rank", 0.0, 10.0, sid=sid, thread=r, rank=r))
        spans.append(span("spmd.compute", 0.0, 1.0, sid=sid + 1, parent=sid,
                          thread=r, rank=r))
        if r:
            spans.append(span("spmd.halo.wait", 1.0, 1.0 + r, sid=sid + 2,
                              parent=sid, thread=r, rank=r))
    return spans


class TestGanttCapping:
    def test_top_ranks_orders_by_wait(self):
        tl = Timeline.from_spans(many_rank_spans(6))
        assert tl.top_ranks(3) == [3, 4, 5]   # rank-sorted, top by wait
        assert tl.top_ranks() == list(range(6))
        assert tl.top_ranks(99) == list(range(6))

    def test_max_ranks_caps_rows_and_adds_footer(self):
        tl = Timeline.from_spans(many_rank_spans(6))
        chart = tl.render_gantt(width=40, max_ranks=2)
        lines = chart.splitlines()
        rows = [line for line in lines if line.startswith("rank ")]
        assert len(rows) == 2
        assert rows[0].startswith("rank  4")
        assert rows[1].startswith("rank  5")
        assert any("4 ranks elided; showing top 2 by wait time" in line
                   for line in lines)

    def test_uncapped_chart_has_no_footer(self):
        tl = Timeline.from_spans(many_rank_spans(4))
        chart = tl.render_gantt(width=40)
        assert "elided" not in chart
        assert sum(1 for line in chart.splitlines()
                   if line.startswith("rank ")) == 4

    def test_cap_wider_than_ranks_is_a_noop(self):
        tl = Timeline.from_spans(many_rank_spans(3))
        assert tl.render_gantt(max_ranks=10) == tl.render_gantt()
