"""Unit tests for sparsity patterns and the pattern algebra."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ShapeError, SparseFormatError
from repro.sparse import (
    CSRMatrix,
    SparsityPattern,
    power_pattern,
    threshold_pattern,
)

from conftest import random_sparse


def pattern_of(rng, n=10, density=0.3) -> SparsityPattern:
    return SparsityPattern.from_csr(random_sparse(rng, n, n, density))


class TestConstruction:
    def test_from_csr(self, rng):
        mat = random_sparse(rng, 6, 8)
        pat = SparsityPattern.from_csr(mat)
        assert pat.shape == mat.shape
        assert pat.nnz == mat.nnz

    def test_from_rows_sorts_and_dedupes(self):
        pat = SparsityPattern.from_rows((2, 5), [[3, 1, 3], [0]])
        assert pat.row(0).tolist() == [1, 3]
        assert pat.row(1).tolist() == [0]

    def test_from_rows_out_of_range(self):
        with pytest.raises(SparseFormatError):
            SparsityPattern.from_rows((1, 3), [[4]])

    def test_from_rows_wrong_count(self):
        with pytest.raises(ShapeError):
            SparsityPattern.from_rows((2, 3), [[0]])

    def test_identity_and_empty(self):
        eye = SparsityPattern.identity(4)
        assert eye.nnz == 4
        assert all(eye.contains(i, i) for i in range(4))
        empty = SparsityPattern.empty((3, 3))
        assert empty.nnz == 0

    def test_validation(self):
        with pytest.raises(SparseFormatError):
            SparsityPattern((2, 2), [0, 2, 2], [1, 0])  # unsorted row


class TestSetAlgebra:
    def test_union_against_dense(self, rng):
        a, b = pattern_of(rng), pattern_of(rng)
        da = a.to_csr().to_dense() != 0
        db = b.to_csr().to_dense() != 0
        u = a.union(b)
        assert np.array_equal(u.to_csr().to_dense() != 0, da | db)

    def test_intersection_against_dense(self, rng):
        a, b = pattern_of(rng), pattern_of(rng)
        da = a.to_csr().to_dense() != 0
        db = b.to_csr().to_dense() != 0
        i = a.intersection(b)
        assert np.array_equal(i.to_csr().to_dense() != 0, da & db)

    def test_difference_against_dense(self, rng):
        a, b = pattern_of(rng), pattern_of(rng)
        da = a.to_csr().to_dense() != 0
        db = b.to_csr().to_dense() != 0
        d = a.difference(b)
        assert np.array_equal(d.to_csr().to_dense() != 0, da & ~db)

    def test_union_idempotent(self, rng):
        a = pattern_of(rng)
        assert a.union(a) == a

    def test_issubset(self, rng):
        a = pattern_of(rng)
        b = pattern_of(rng)
        assert a.issubset(a.union(b))
        assert a.intersection(b).issubset(a)

    def test_shape_mismatch(self, rng):
        a = pattern_of(rng, 5)
        b = pattern_of(rng, 6)
        with pytest.raises(ShapeError):
            a.union(b)


class TestStructuralOps:
    def test_lower(self, rng):
        a = pattern_of(rng)
        dense = a.to_csr().to_dense() != 0
        assert np.array_equal(
            a.lower().to_csr().to_dense() != 0, np.tril(dense)
        )
        assert np.array_equal(
            a.lower(strict=True).to_csr().to_dense() != 0, np.tril(dense, -1)
        )

    def test_with_diagonal(self, rng):
        a = pattern_of(rng)
        wd = a.with_diagonal()
        assert all(wd.contains(i, i) for i in range(a.nrows))
        assert a.issubset(wd)

    def test_transpose(self, rng):
        a = pattern_of(rng)
        dense = a.to_csr().to_dense() != 0
        assert np.array_equal(a.transpose().to_csr().to_dense() != 0, dense.T)

    def test_symmetrized(self, rng):
        a = pattern_of(rng)
        s = a.symmetrized()
        assert s == s.transpose()
        assert a.issubset(s)

    def test_contains(self):
        pat = SparsityPattern.from_rows((2, 4), [[1, 3], []])
        assert pat.contains(0, 1)
        assert not pat.contains(0, 2)
        assert not pat.contains(1, 0)

    def test_to_csr_with_values(self):
        pat = SparsityPattern.from_rows((2, 2), [[0], [1]])
        mat = pat.to_csr(np.array([2.0, 3.0]))
        assert mat.to_dense()[0, 0] == 2.0
        assert mat.to_dense()[1, 1] == 3.0


class TestPaperPatternBuilders:
    def test_threshold_keeps_diagonal(self, rng):
        n = 12
        dense = rng.standard_normal((n, n)) * 0.01
        np.fill_diagonal(dense, 1.0)
        mat = CSRMatrix.from_dense(dense)
        pat = threshold_pattern(mat, 0.5)
        assert all(pat.contains(i, i) for i in range(n))
        # all off-diagonals are tiny relative to the unit diagonal
        assert pat.nnz == n

    def test_threshold_scale_independence(self):
        # scaling the matrix must not change the thresholded pattern
        dense = np.array([[4.0, 0.2, 0.0], [0.2, 1.0, 0.5], [0.0, 0.5, 9.0]])
        m1 = CSRMatrix.from_dense(dense)
        m2 = CSRMatrix.from_dense(dense * 1000.0)
        p1 = threshold_pattern(m1, 0.2)
        p2 = threshold_pattern(m2, 0.2)
        assert p1 == p2

    def test_threshold_zero_keeps_everything(self, rng):
        # threshold 0 keeps every stored entry; it never *adds* entries
        # (the diagonal is ensured later by fsai_pattern)
        mat = random_sparse(rng, 8, 8)
        pat = threshold_pattern(mat, 0.0)
        assert pat == SparsityPattern.from_csr(mat)

    def test_power_level1_is_base_plus_diagonal(self, rng):
        mat = random_sparse(rng, 8, 8)
        pat = SparsityPattern.from_csr(mat)
        assert power_pattern(pat, 1) == pat.with_diagonal()

    def test_power_matches_dense_boolean_power(self, rng):
        mat = random_sparse(rng, 9, 9)
        pat = SparsityPattern.from_csr(mat)
        dense = (mat.to_dense() != 0).astype(float) + np.eye(9)
        acc = dense.copy()
        for level in (2, 3):
            acc = acc @ dense
            got = power_pattern(pat, level).to_csr().to_dense() != 0
            assert np.array_equal(got, acc > 0)

    def test_power_monotone(self, rng):
        mat = random_sparse(rng, 8, 8)
        pat = SparsityPattern.from_csr(mat)
        p1, p2 = power_pattern(pat, 1), power_pattern(pat, 2)
        assert p1.issubset(p2)

    def test_power_rejects_bad_level(self, rng):
        pat = pattern_of(rng)
        with pytest.raises(ValueError):
            power_pattern(pat, 0)
