"""Unit tests for the cache simulator and SpMV trace generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cachesim import (
    L1_A64FX,
    L1_SKYLAKE,
    CacheConfig,
    SetAssociativeCache,
    doubles_per_line,
    line_block,
    line_ids,
    line_of,
    simulate_misses,
    spmv_x_misses,
    x_access_lines,
)
from repro.dist import RowPartition
from repro.sparse import CSRMatrix


class TestLineGeometry:
    def test_doubles_per_line(self):
        assert doubles_per_line(64) == 8
        assert doubles_per_line(256) == 32
        assert doubles_per_line(8) == 1

    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            doubles_per_line(0)
        with pytest.raises(ValueError):
            doubles_per_line(12)

    def test_line_of(self):
        assert line_of(0, 64) == 0
        assert line_of(7, 64) == 0
        assert line_of(8, 64) == 1

    def test_line_block_clipping(self):
        assert line_block(3, 64, 100) == (0, 8)
        assert line_block(9, 64, 12) == (8, 12)  # clipped at vector end
        assert line_block(5, 256, 100) == (0, 32)

    def test_line_ids_vectorised(self):
        cols = np.array([0, 7, 8, 15, 16])
        assert line_ids(cols, 64).tolist() == [0, 0, 1, 1, 2]


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig(32 * 1024, 64, 8)
        assert cfg.num_sets == 64

    def test_scaled(self):
        cfg = CacheConfig(32 * 1024, 64, 8).scaled(4)
        assert cfg.size_bytes == 128 * 1024
        assert cfg.line_bytes == 64

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(0, 64, 8)
        with pytest.raises(ValueError):
            CacheConfig(100, 64, 8)  # not a multiple


class TestLRUCache:
    def cfg(self, sets=2, assoc=2, line=64):
        return CacheConfig(sets * assoc * line, line, assoc)

    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(self.cfg())
        assert not cache.access(0)
        assert cache.access(0)
        assert cache.misses == 1 and cache.hits == 1

    def test_lru_eviction(self):
        # 2-way set: lines 0, 2, 4 map to set 0 (2 sets)
        cache = SetAssociativeCache(self.cfg(sets=2, assoc=2))
        cache.access(0)
        cache.access(2)
        cache.access(0)  # touch 0: now 2 is LRU
        cache.access(4)  # evicts 2
        assert cache.access(0)  # still resident
        assert not cache.access(2)  # was evicted

    def test_distinct_sets_do_not_conflict(self):
        cache = SetAssociativeCache(self.cfg(sets=2, assoc=1))
        cache.access(0)  # set 0
        cache.access(1)  # set 1
        assert cache.access(0)
        assert cache.access(1)

    def test_stream_counts_repeats_as_hits(self):
        cache = SetAssociativeCache(self.cfg())
        misses = cache.access_stream(np.array([0, 0, 0, 1, 1, 0]))
        # unique transitions: 0 (miss), 1 (miss), 0 (hit, still resident)
        assert misses == 2
        assert cache.hits == 4

    def test_stream_empty(self):
        cache = SetAssociativeCache(self.cfg())
        assert cache.access_stream(np.empty(0, dtype=np.int64)) == 0

    def test_reset_counters(self):
        cache = SetAssociativeCache(self.cfg())
        cache.access(0)
        cache.reset_counters()
        assert cache.misses == 0 and cache.hits == 0

    def test_simulate_misses_bounds(self, rng):
        stream = rng.integers(0, 100, size=500)
        misses = simulate_misses(stream, self.cfg(sets=4, assoc=2))
        distinct = np.unique(stream).size
        assert distinct <= misses <= stream.size


class TestSpMVTrace:
    def test_access_lines_follow_indices(self):
        mat = CSRMatrix.from_coo((2, 20), [0, 0, 1], [0, 9, 15], [1.0, 1.0, 1.0])
        assert x_access_lines(mat, 64).tolist() == [0, 1, 1]

    def test_sequential_access_misses_once_per_line(self):
        # a dense row touching 64 consecutive x entries: 8 lines at 64 B
        mat = CSRMatrix.from_coo(
            (1, 64), np.zeros(64, dtype=int), np.arange(64), np.ones(64)
        )
        assert spmv_x_misses(mat, L1_SKYLAKE) == 8

    def test_larger_lines_fewer_misses(self):
        rng = np.random.default_rng(0)
        n = 4096
        cols = np.sort(rng.choice(n, size=600, replace=False))
        mat = CSRMatrix.from_coo((1, n), np.zeros(600, dtype=int), cols, np.ones(600))
        assert spmv_x_misses(mat, L1_A64FX) <= spmv_x_misses(mat, L1_SKYLAKE)

    @pytest.mark.parametrize(
        "config", [L1_SKYLAKE, L1_A64FX], ids=["64B", "256B"]
    )
    def test_extension_in_touched_lines_adds_no_misses(self, config):
        """The paper's core cache claim at kernel level (Figures 3a/5a):
        adding entries whose x operands share already-touched lines leaves
        misses unchanged — at the 64 B Skylake/Zen 2 geometry and the 256 B
        A64FX geometry alike."""
        rng = np.random.default_rng(1)
        n = 4096
        dpl = config.line_bytes // 8
        base_cols = np.sort(
            rng.choice(np.arange(0, n, dpl), 100, replace=False)
        )
        base = CSRMatrix.from_coo(
            (1, n), np.zeros(100, dtype=int), base_cols, np.ones(100)
        )
        # extend every entry with its full line of doubles
        ext_cols = np.unique((base_cols // dpl)[:, None] * dpl + np.arange(dpl))
        ext = CSRMatrix.from_coo(
            (1, n), np.zeros(ext_cols.size, dtype=int), ext_cols, np.ones(ext_cols.size)
        )
        assert spmv_x_misses(ext, config) == spmv_x_misses(base, config)
        assert ext.nnz > base.nnz

    @pytest.mark.parametrize(
        "config", [L1_SKYLAKE, L1_A64FX], ids=["64B", "256B"]
    )
    def test_precond_misses_per_rank(self, poisson16, config):
        from repro.cachesim import precond_x_misses_per_rank
        from repro.core import build_fsai

        part = RowPartition.from_matrix(poisson16, 2, seed=0)
        pre = build_fsai(poisson16, part)
        misses = precond_x_misses_per_rank(pre.g, pre.gt, config)
        assert misses.shape == (2,)
        assert np.all(misses > 0)
