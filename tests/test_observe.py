"""Tests for the observability layer (:mod:`repro.observe`).

Covers the four pieces and their solver/metric emission contracts:

* flight recorder — per-iteration events from the Krylov solvers, parsed
  back by :class:`FlightRecord`, with stagnation/divergence detectors;
* communication-invariance auditor — the paper's §4 claim as a verdict
  object, including the acceptance cases (FSAI vs FSAIE-Comm invariant on a
  2-D stencil across 4 ranks; a deliberately halo-widened pattern flagged);
* load-balance monitor — bisection trajectories recorded by
  ``compute_dynamic_filters`` read back into :class:`BalanceReport`;
* unified run reports — versioned JSON roundtrip, format dispatch, and the
  :meth:`RunReport.compare` regression comparator.
"""

from __future__ import annotations

import json
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core.cg import pcg
from repro.core.filtering import FilterSpec, compute_dynamic_filters
from repro.core.fsai import fsai_pattern
from repro.core.precond import build_fsai, build_fsaie_comm
from repro.core.solvers import bicgstab, pipelined_pcg
from repro.dist.halo import HaloSchedule
from repro.dist.vector import DistVector
from repro.instrument import tracing
from repro.mpisim.tracker import CommTracker
from repro.observe import (
    DIVERGENCE_FACTOR,
    TRUE_RESIDUAL_INTERVAL,
    BalanceReport,
    CommAuditor,
    FlightRecord,
    ReportError,
    RunReport,
    audit_preconditioners,
    audit_schedules,
    balance_report,
    compare_snapshots,
    flatten_metrics,
    schedule_snapshot,
)
from repro.sparse.pattern import SparsityPattern


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_pcg_emits_iteration_events(self, dist_poisson16):
        _, _, da, b = dist_poisson16
        with tracing() as (tracer, _):
            result = pcg(da, b)  # plain CG: enough iterations for drift checks
            record = FlightRecord.from_tracer(tracer, solver="pcg")
        assert result.converged
        assert record.solver == "pcg"
        assert record.iterations == result.iterations
        assert record.indices == list(range(result.iterations))
        # residual series matches the solver's own history (post-initial)
        assert record.residuals == pytest.approx(result.residual_norms[1:])
        assert record.final_residual == pytest.approx(result.final_residual)
        # alpha/beta recorded for every iteration
        assert all(a is not None for a in record.alphas)
        assert all(b_ is not None for b_ in record.betas)
        assert record.alphas == pytest.approx(result.alphas)

    def test_pcg_drift_checks_fire_on_schedule(self, dist_poisson16):
        _, _, da, b = dist_poisson16
        with tracing() as (tracer, _):
            result = pcg(da, b)
            record = FlightRecord.from_tracer(tracer)
        assert result.iterations >= TRUE_RESIDUAL_INTERVAL
        expected = result.iterations // TRUE_RESIDUAL_INTERVAL
        assert len(record.drift_checks) == expected
        for check in record.drift_checks:
            assert (check.index + 1) % TRUE_RESIDUAL_INTERVAL == 0
            assert math.isfinite(check.true_residual)
        # recurrence CG on a small SPD problem barely drifts
        assert record.max_drift < 1e-10

    def test_drift_spmv_charged_to_solve_tracker(self, dist_poisson16):
        """The explicit true-residual SpMV must not break the traced-bytes
        == tracker-bytes invariant (it runs the same halo schedule)."""
        _, _, da, b = dist_poisson16
        tracker = CommTracker()
        with tracing() as (tracer, _):
            pcg(da, b, tracker=tracker)
        traced = sum(
            int(s.tags.get("bytes", 0))
            for s in tracer.spans
            if s.name == "halo.exchange"
        )
        assert traced == tracker.total_bytes

    def test_bicgstab_and_pipelined_emit_tagged_events(self, dist_poisson16):
        mat, part, da, b = dist_poisson16
        pre = build_fsai(mat, part)
        with tracing() as (tracer, _):
            r1 = bicgstab(da, b, precond=pre)
            r2 = pipelined_pcg(da, b, precond=pre)
            stab = FlightRecord.from_tracer(tracer, solver="bicgstab")
            pipe = FlightRecord.from_tracer(tracer, solver="pipelined_pcg")
        assert stab.iterations == r1.iterations
        assert pipe.iterations == r2.iterations
        # bicgstab reports omega through the beta slot
        assert any(v is not None for v in stab.betas)

    def test_disabled_tracing_records_nothing(self, dist_poisson16):
        from repro.instrument import get_tracer

        _, _, da, b = dist_poisson16
        result = pcg(da, b)
        assert result.converged
        assert get_tracer().spans == []

    def test_stagnation_detector(self):
        rec = FlightRecord(
            solver="pcg",
            indices=list(range(30)),
            residuals=[1.0] * 15 + [0.5 * 0.5**k for k in range(15)],
        )
        stalls = rec.stagnation(window=10)
        assert stalls  # flat opening stretch flagged
        assert stalls[0] == 10
        assert 29 not in stalls  # converging tail is clean

    def test_stagnation_rejects_bad_window(self):
        with pytest.raises(ValueError):
            FlightRecord().stagnation(window=0)

    def test_divergence_detector_offline_and_events(self):
        residuals = [1.0, 2.0, 25.0, 0.5]
        rec = FlightRecord(indices=[0, 1, 2, 3], residuals=residuals)
        assert rec.divergence(factor=DIVERGENCE_FACTOR) == [2]
        assert rec.divergence(factor=1.5) == [1, 2]

    def test_from_spans_omega_fallback_and_filtering(self):
        spans = [
            {"name": "flight.iteration",
             "tags": {"solver": "bicgstab", "index": 0, "residual": 1.0,
                      "alpha": 0.5, "omega": 0.25}},
            {"name": "flight.iteration",
             "tags": {"solver": "pcg", "index": 0, "residual": 2.0,
                      "alpha": 0.1, "beta": 0.2}},
            {"name": "flight.divergence", "tags": {"solver": "pcg", "index": 7}},
            {"name": "pcg.iteration", "tags": {"solver": "pcg"}},  # not a flight event
        ]
        rec = FlightRecord.from_spans(spans, solver="bicgstab")
        assert rec.iterations == 1
        assert rec.betas == [0.25]
        assert rec.divergence_events == []
        rec = FlightRecord.from_spans(spans, solver="pcg")
        assert rec.betas == [0.2]
        assert rec.divergence_events == [7]

    def test_summary_is_json_serialisable(self, dist_poisson16):
        _, _, da, b = dist_poisson16
        with tracing() as (tracer, _):
            pcg(da, b)
            summary = FlightRecord.from_tracer(tracer).summary()
        doc = json.loads(json.dumps(summary))
        assert doc["solver"] == "pcg"
        assert doc["iterations"] > 0
        assert doc["drift_checks"]


# ----------------------------------------------------------------------
# communication-invariance auditor (acceptance cases)
# ----------------------------------------------------------------------
def _widened_pattern(pattern: SparsityPattern, partition) -> SparsityPattern:
    """Copy ``pattern`` with one extra entry coupling a rank-0 row to a
    column owned by a rank it previously never received from."""
    owner = partition.owner
    base_edges = HaloSchedule.from_pattern(pattern, partition).edges()
    far = next(q for q in range(partition.nparts) if q != 0 and (q, 0) not in base_edges)
    row = int(np.flatnonzero(owner == 0)[-1])
    col = int(np.flatnonzero(owner == far)[0])
    indptr, indices = pattern.indptr, pattern.indices
    assert col not in indices[indptr[row] : indptr[row + 1]]
    new_indices, new_indptr = [], [0]
    for r in range(pattern.shape[0]):
        cols = indices[indptr[r] : indptr[r + 1]].tolist()
        if r == row:
            cols = sorted(cols + [col])
        new_indices.extend(cols)
        new_indptr.append(len(new_indices))
    return SparsityPattern(
        pattern.shape,
        np.asarray(new_indptr, dtype=np.int64),
        np.asarray(new_indices, dtype=np.int64),
        check=False,
    )


class TestInvarianceAuditor:
    """ISSUE acceptance: on a 2-D stencil across >= 4 simulated ranks, the
    auditor proves FSAI vs FSAIE-Comm identical and refutes a widened halo."""

    def test_fsai_vs_fsaie_comm_invariant(self, dist_poisson16):
        mat, part, _, _ = dist_poisson16
        assert part.nparts >= 4
        base = build_fsai(mat, part)
        extended = build_fsaie_comm(mat, part)
        audit = audit_preconditioners(base, extended)
        assert audit.invariant, audit.render()
        for verdict in (audit.g, audit.gt):
            assert verdict.invariant
            assert verdict.violations == 0
            # identical edge/message/byte totals, not merely "no diff found"
            assert verdict.base_totals == verdict.other_totals
            assert verdict.base_totals[0] > 0  # the stencil does communicate
        assert audit.g.base == "FSAI.G"
        assert audit.g.other == "FSAIE-Comm.G"
        assert "HOLDS" in audit.render()

    def test_halo_widened_pattern_flagged(self, dist_poisson16):
        mat, part, _, _ = dist_poisson16
        pattern = fsai_pattern(mat)
        widened = _widened_pattern(pattern, part)
        verdict = audit_schedules(
            HaloSchedule.from_pattern(pattern, part),
            HaloSchedule.from_pattern(widened, part),
            base_label="fsai",
            other_label="widened",
        )
        assert not verdict.invariant
        assert verdict.extra_edges  # the offending new edge is named
        assert verdict.missing_edges == []
        assert verdict.violations >= 1
        assert "VIOLATED" in verdict.render()
        assert "extra edge" in verdict.render()
        edge = verdict.extra_edges[0]
        assert edge[1] == 0  # rank 0's halo was widened

    def test_halo_widened_preconditioner_object_flagged(self, dist_poisson16):
        """The duck-typed audit surface flags a doctored preconditioner."""
        mat, part, _, _ = dist_poisson16
        base = build_fsai(mat, part)
        widened_sched = HaloSchedule.from_pattern(
            _widened_pattern(fsai_pattern(mat), part), part
        )
        doctored = SimpleNamespace(
            name="FSAI-widened",
            g=SimpleNamespace(schedule=widened_sched),
            gt=SimpleNamespace(schedule=base.gt.schedule),
        )
        audit = audit_preconditioners(base, doctored)
        assert not audit.invariant
        assert not audit.g.invariant
        assert audit.gt.invariant  # only G was doctored
        assert audit.g.other == "FSAI-widened.G"
        doc = audit.to_dict()
        assert doc["invariant"] is False
        assert doc["g"]["extra_edges"]  # "src->dst" strings
        assert all("->" in e for e in doc["g"]["extra_edges"])

    def test_schedule_snapshot_accounting(self, dist_poisson16):
        mat, part, _, _ = dist_poisson16
        sched = HaloSchedule.from_pattern(fsai_pattern(mat), part)
        snap = schedule_snapshot(sched)
        assert set(snap["p2p_messages"]) == sched.edges()
        assert all(v == 1 for v in snap["p2p_messages"].values())
        assert sum(snap["p2p_bytes"].values()) == 8 * sched.total_halo_values()

    def test_compare_snapshots_accepts_string_keys(self):
        live = {"p2p_messages": {(0, 1): 2}, "p2p_bytes": {(0, 1): 16},
                "collective_calls": {}, "collective_bytes": {}}
        exported = {"p2p_messages": {"0->1": 2}, "p2p_bytes": {"0->1": 16},
                    "collective_calls": {}, "collective_bytes": {}}
        assert compare_snapshots(live, exported).invariant

    def test_compare_snapshots_byte_and_message_mismatches(self):
        a = {"p2p_messages": {(0, 1): 2, (1, 0): 1},
             "p2p_bytes": {(0, 1): 16, (1, 0): 8},
             "collective_calls": {"allreduce": 3}, "collective_bytes": {"allreduce": 24}}
        b = {"p2p_messages": {(0, 1): 2, (1, 0): 2},
             "p2p_bytes": {(0, 1): 32, (1, 0): 16},
             "collective_calls": {"allreduce": 5}, "collective_bytes": {"allreduce": 40}}
        verdict = compare_snapshots(a, b)
        assert not verdict.invariant
        assert verdict.byte_mismatches[(0, 1)] == (16, 32)
        assert verdict.message_mismatches[(1, 0)] == (1, 2)
        assert "allreduce" in verdict.collective_mismatches
        # p2p-only comparison drops the collective discrepancy
        p2p_only = compare_snapshots(a, b, check_collectives=False)
        assert "allreduce" not in p2p_only.collective_mismatches


class TestCommAuditor:
    def test_phase_records_and_compares(self, dist_poisson16):
        mat, part, da, _ = dist_poisson16
        x = DistVector.from_global(np.ones(mat.nrows), part)
        auditor = CommAuditor()
        with auditor.phase("first") as tracker:
            da.spmv(x, tracker)
        with auditor.phase("second") as tracker:
            da.spmv(x, tracker)
        assert auditor.labels == ["first", "second"]
        verdict = auditor.verdict("first", "second")
        assert verdict.invariant, verdict.render()
        assert verdict.base_totals[2] > 0

    def test_verdict_unknown_phase_raises(self):
        with pytest.raises(KeyError):
            CommAuditor().verdict("a", "b")

    def test_per_update_verdict_normalises_counts(self, dist_poisson16):
        """Solves with different halo-update counts still compare equal on
        the per-update schedule — the form of the paper's claim."""
        mat, part, da, _ = dist_poisson16
        x = DistVector.from_global(np.ones(mat.nrows), part)
        auditor = CommAuditor()
        t1, t2 = CommTracker(), CommTracker()
        da.spmv(x, t1)
        for _ in range(3):
            da.spmv(x, t2)
        auditor.record("one", t1, updates=1)
        auditor.record("three", t2, updates=3)
        # raw totals differ...
        assert not auditor.verdict("one", "three").invariant
        # ...but per-update accounting is identical
        per_update = auditor.per_update_verdict("one", "three")
        assert per_update.invariant, per_update.render()

    def test_per_update_requires_update_counts(self, dist_poisson16):
        mat, part, da, _ = dist_poisson16
        x = DistVector.from_global(np.ones(mat.nrows), part)
        auditor = CommAuditor()
        with auditor.phase("untagged") as tracker:
            da.spmv(x, tracker)
        auditor.record("tagged", CommTracker(), updates=1)
        with pytest.raises(ValueError, match="updates="):
            auditor.per_update_verdict("untagged", "tagged")


# ----------------------------------------------------------------------
# load-balance monitor
# ----------------------------------------------------------------------
def _imbalanced_inputs():
    """4 ranks, rank 0 heavily overloaded by extension entries."""
    base_counts = np.array([100, 100, 100, 100])
    ratios = [
        np.linspace(0.02, 0.9, 300),  # rank 0: many strong extension entries
        np.full(10, 0.02),
        np.full(10, 0.02),
        np.full(10, 0.02),
    ]
    return base_counts, ratios


class TestBalanceMonitor:
    def test_dynamic_filters_record_trajectories(self):
        base_counts, ratios = _imbalanced_inputs()
        spec = FilterSpec(0.01, dynamic=True)
        with tracing() as (_, metrics):
            filters = compute_dynamic_filters(base_counts, ratios, spec)
            report = BalanceReport.from_metrics(metrics, band=spec.band)
        assert report.ranks == 4
        assert report.filters == pytest.approx(list(filters))
        # the overloaded rank bisected: raised filter, multi-step trajectory
        assert filters[0] > spec.value
        assert report.steps.get(0, 0) >= 1
        assert len(report.trajectories[0]) == report.steps[0] + 1
        # underloaded ranks stop at the initial evaluation
        for rank in (1, 2, 3):
            assert filters[rank] == spec.value
            assert report.steps.get(rank, 0) == 0
            assert len(report.trajectories[rank]) == 1
        # final gauges reproduce the loads the bisection converged to
        assert report.loads[0] <= spec.band[1] + 1e-12

    def test_metrics_silent_when_disabled(self):
        from repro.instrument import get_metrics

        base_counts, ratios = _imbalanced_inputs()
        compute_dynamic_filters(base_counts, ratios, FilterSpec(0.01, dynamic=True))
        assert get_metrics().collect() == []

    def test_from_counts_and_offenders(self):
        report = BalanceReport.from_counts([100, 100, 100, 140], filters=[0.01] * 4)
        assert report.ranks == 4
        assert not report.within_band
        assert 3 in report.offenders()  # the overloaded rank is named
        assert report.imbalance == pytest.approx(1.4)
        assert "IMBALANCED" in report.render()
        assert "outside band" in report.render()

    def test_from_precond_duck_typing(self, dist_poisson16):
        mat, part, _, _ = dist_poisson16
        pre = build_fsai(mat, part)
        report = BalanceReport.from_precond(pre)
        assert report.ranks == part.nparts
        assert report.loads == pytest.approx(
            list(pre.nnz_per_rank() / pre.nnz_per_rank().mean())
        )
        assert report.filters == pytest.approx([0.0] * part.nparts)

    def test_balance_report_dispatch(self, dist_poisson16):
        mat, part, _, _ = dist_poisson16
        pre = build_fsai(mat, part)
        assert balance_report(pre).ranks == part.nparts
        assert balance_report([10, 10]).within_band
        with tracing() as (_, metrics):
            base_counts, ratios = _imbalanced_inputs()
            compute_dynamic_filters(base_counts, ratios, FilterSpec(0.01))
            assert balance_report(metrics).ranks == 4

    def test_to_dict_roundtrips_through_json(self):
        base_counts, ratios = _imbalanced_inputs()
        with tracing() as (_, metrics):
            compute_dynamic_filters(base_counts, ratios, FilterSpec(0.01))
            report = BalanceReport.from_metrics(metrics)
        doc = json.loads(json.dumps(report.to_dict()))
        assert doc["ranks"] == 4
        assert doc["within_band"] == report.within_band
        assert doc["trajectories"]["0"] == report.trajectories[0]


# ----------------------------------------------------------------------
# halo traffic counters (satellite: per-rank accounting on both paths)
# ----------------------------------------------------------------------
class TestHaloCounters:
    def test_bytes_sent_counters_match_tracker(self, dist_poisson16):
        mat, part, da, _ = dist_poisson16
        x = DistVector.from_global(np.ones(mat.nrows), part)
        tracker = CommTracker()
        with tracing() as (_, metrics):
            da.spmv(x, tracker)
        sched = da.schedule
        total = 0
        for q in range(part.nparts):
            expected_bytes = sum(
                8 * int(ids.size) for ids in sched.send_to[q].values() if ids.size
            )
            expected_msgs = sum(1 for ids in sched.send_to[q].values() if ids.size)
            if expected_msgs:
                assert metrics.value("halo.bytes_sent", rank=q) == expected_bytes
                assert metrics.value("halo.msgs", rank=q) == expected_msgs
            total += expected_bytes
        assert total == tracker.total_bytes

    def test_counters_identical_on_out_path(self, dist_poisson16):
        """The legacy and ``out=`` halo update paths account identically."""
        mat, part, da, _ = dist_poisson16
        x = DistVector.from_global(np.ones(mat.nrows), part)
        with tracing() as (_, legacy):
            da.schedule.update(x.parts, None)
        parts = [p.copy() for p in x.parts]
        out = [np.empty(da.schedule.halo_size(r)) for r in range(part.nparts)]
        with tracing() as (_, reused):
            da.schedule.update(parts, None, out=out)
        def halo_only(metrics):
            return {
                k: v
                for k, v in flatten_metrics(metrics.collect()).items()
                if k.startswith("halo.")
            }

        # identical per-rank halo accounting (the out= path skips the buffer
        # allocations, so kernels.* counters legitimately differ)
        assert halo_only(legacy) == halo_only(reused)
        assert halo_only(legacy)  # non-vacuous


# ----------------------------------------------------------------------
# unified run reports
# ----------------------------------------------------------------------
class TestRunReport:
    def _sample(self) -> RunReport:
        report = RunReport(meta={"label": "sample", "grid": 16})
        report.add_section("balance", BalanceReport.from_counts([10, 10]))
        report.add_metric("pcg.iterations", 42)
        report.add_metric("kernels.hot_allocs", 0)
        return report

    def test_save_load_roundtrip(self, tmp_path):
        report = self._sample()
        path = report.save(tmp_path / "run.json")
        loaded = RunReport.load(path)
        assert loaded.to_dict() == report.to_dict()
        assert loaded.label == "sample"
        assert loaded.metrics["pcg.iterations"] == 42.0
        doc = json.loads(path.read_text())
        assert doc["format"] == "repro-run-report"
        assert doc["version"] == 2

    def test_from_run_collects_flight_and_metrics(self, dist_poisson16):
        _, _, da, b = dist_poisson16
        with tracing() as (tracer, metrics):
            result = pcg(da, b)
            report = RunReport.from_run(tracer, metrics, label="live", grid=16)
        assert report.meta["grid"] == 16
        assert report.sections["flight"]["iterations"] == result.iterations
        assert "pcg.solve" in report.sections["timers"]
        assert report.metrics["pcg.iterations"] == float(result.iterations)

    def test_from_trace_doc_via_load(self, tmp_path, dist_poisson16):
        from repro.instrument import write_json_trace

        _, _, da, b = dist_poisson16
        with tracing() as (tracer, metrics):
            result = pcg(da, b)
            path = write_json_trace(tmp_path / "trace.json", tracer, metrics)
        report = RunReport.load(path)
        assert report.meta["source"] == "trace"
        assert report.sections["flight"]["iterations"] == result.iterations
        assert report.metrics["pcg.iterations"] == float(result.iterations)

    def test_from_bench_via_load(self, tmp_path):
        doc = {
            "suite": "kernels",
            "config": {"sizes": [12], "reps": 1},
            "summary": {"pcg_hot_allocs": 0, "pcg_speedup": 1.5},
            "pcg": {"iterations": 30, "workspace_allocs_hot": 0},
        }
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(doc))
        report = RunReport.load(path)
        assert report.metrics["bench.pcg_hot_allocs"] == 0.0
        assert report.metrics["bench.pcg.iterations"] == 30.0
        assert report.sections["bench"]["pcg_speedup"] == 1.5

    def test_version_1_documents_still_load(self, tmp_path):
        # v1 reports (written before the timeline/attribution sections
        # existed) must keep loading under the v2 reader
        path = tmp_path / "v1.json"
        path.write_text(
            json.dumps(
                {
                    "format": "repro-run-report",
                    "version": 1,
                    "meta": {"label": "old"},
                    "sections": {"flight": {"iterations": 12}},
                    "metrics": {"pcg.iterations": 12.0},
                }
            )
        )
        report = RunReport.load(path)
        assert report.label == "old"
        assert report.metrics["pcg.iterations"] == 12.0

    def test_from_solver_bench_via_load(self, tmp_path):
        doc = {
            "suite": "solver",
            "config": {"matrices": ["msdoor"], "filter": 0.01},
            "solver": {"msdoor": {"methods": {"fsai": {"iterations": 106}}}},
            "summary": {
                "msdoor.fsai.iterations": 106,
                "msdoor.comm.iterations": 99,
                "msdoor.comm.invariant": 1,
            },
        }
        path = tmp_path / "BENCH_solver.json"
        path.write_text(json.dumps(doc))
        report = RunReport.load(path)
        assert report.meta["source"] == "solver-bench"
        assert report.metrics["solver.msdoor.fsai.iterations"] == 106.0
        assert report.metrics["solver.msdoor.comm.invariant"] == 1.0
        assert report.sections["solver"]["msdoor"]["methods"]["fsai"]["iterations"] == 106

    def test_attach_timeline_and_attribution(self):
        from repro.observe import MethodFacts, Timeline, attribute
        from repro.observe.timeline import Segment

        report = self._sample()
        timeline = Timeline(
            [
                Segment(0, "spmd.compute", "compute", 0.0, 2.0),
                Segment(1, "spmd.halo.wait", "wait", 0.0, 1.5, src=0),
            ]
        )
        report.attach_timeline(timeline)
        assert report.sections["timeline"]["ranks"] == 2
        assert report.metrics["timeline.makespan_seconds"] == pytest.approx(2.0)
        assert report.metrics["timeline.max_wait_seconds"] == pytest.approx(1.5)
        assert "timeline.critical_path_seconds" in report.metrics

        verdict = attribute(
            [
                MethodFacts(method="FSAI", iterations=30),
                MethodFacts(method="FSAIE-Comm", iterations=25, nnz=10,
                            base_nnz=8),
            ]
        )
        report.attach_attribution(verdict)
        section = report.sections["attribution"]
        assert section["baseline"] == "FSAI"
        assert "headline" in section
        assert report.metrics["attribution.fsaie-comm.iterations"] == 25.0
        assert report.metrics["attribution.suspects"] == 0.0
        # the attached report still round-trips through its document form
        assert RunReport.from_dict(report.to_dict()).to_dict() == report.to_dict()

    def test_load_missing_file_raises_report_error(self, tmp_path):
        with pytest.raises(ReportError, match="cannot read"):
            RunReport.load(tmp_path / "absent.json")

    def test_load_malformed_json_raises_report_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ReportError, match="not valid JSON"):
            RunReport.load(path)

    def test_load_unrecognised_document(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": "world"}))
        with pytest.raises(ReportError, match="unrecognised"):
            RunReport.load(path)

    def test_load_future_schema_version(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"format": "repro-run-report", "version": 99, "meta": {}})
        )
        with pytest.raises(ReportError, match="version 99"):
            RunReport.load(path)

    def test_load_future_trace_version(self, tmp_path):
        path = tmp_path / "future_trace.json"
        path.write_text(json.dumps({"format": "repro-trace", "version": 99}))
        with pytest.raises(ReportError, match="newer"):
            RunReport.load(path)

    def test_add_section_rejects_non_dict(self):
        with pytest.raises(TypeError):
            self._sample().add_section("bad", 3)

    def test_compare_within_tolerance_passes(self):
        base, other = self._sample(), self._sample()
        other.metrics["pcg.iterations"] = 44.0
        comparison = base.compare(other, {"pcg.iterations": {"rel": 0, "abs": 2}})
        assert comparison.passed
        assert [d.name for d in comparison.deltas] == sorted(base.metrics)

    def test_compare_flags_regression_and_missing(self):
        base, other = self._sample(), self._sample()
        other.metrics["kernels.hot_allocs"] = 5.0
        del other.metrics["pcg.iterations"]
        comparison = base.compare(other)
        assert not comparison.passed
        failed = {d.name for d in comparison.regressions()}
        assert failed == {"kernels.hot_allocs", "pcg.iterations"}
        missing = next(d for d in comparison.deltas if d.name == "pcg.iterations")
        assert missing.other is None and not missing.ok

    def test_compare_relative_tolerance_and_bare_names(self):
        base = RunReport(meta={"label": "a"}, metrics={"x{rank=0}": 100.0})
        other = RunReport(meta={"label": "b"}, metrics={"x{rank=0}": 104.0})
        assert not base.compare(other).passed
        # tolerance matches the bare name before the tag suffix
        assert base.compare(other, {"x": 0.05}).passed
        assert base.compare(other, default_rel=0.05).passed

    def test_compare_metrics_restriction(self):
        base, other = self._sample(), self._sample()
        other.metrics["kernels.hot_allocs"] = 9.0
        comparison = base.compare(other, metrics=["pcg.iterations"])
        assert comparison.passed
        with pytest.raises(KeyError):
            base.compare(other, metrics=["no.such.metric"])

    def test_extra_metrics_in_other_are_ignored(self):
        base, other = self._sample(), self._sample()
        other.metrics["brand.new"] = 1.0
        assert base.compare(other).passed

    def test_render_table_and_only_failures(self):
        base, other = self._sample(), self._sample()
        other.metrics["kernels.hot_allocs"] = 5.0
        comparison = base.compare(other)
        text = comparison.render()
        assert "FAIL" in text and "kernels.hot_allocs" in text
        filtered = comparison.render(only_failures=True)
        assert "pcg.iterations" not in filtered
        passing = base.compare(self._sample())
        assert "within tolerance" in passing.render(only_failures=True)
        assert "PASS" in passing.render()

    def test_to_text_and_markdown(self):
        report = self._sample()
        text = report.to_text()
        assert "run report: sample" in text
        assert "pcg.iterations" in text
        md = report.to_markdown()
        assert "# Run report — sample" in md
        assert "| `pcg.iterations` | 42 |" in md
        assert "## balance" in md

    def test_flatten_metrics_histogram_subkeys(self):
        with tracing() as (_, metrics):
            metrics.counter("a", rank=1).inc(3)
            metrics.histogram("h").observe(2.0)
            metrics.histogram("h").observe(4.0)
            flat = flatten_metrics(metrics.collect())
        assert flat["a{rank=1}"] == 3.0
        assert flat["h.count"] == 2.0
        assert flat["h.sum"] == 6.0
