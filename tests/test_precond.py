"""Unit tests for the full preconditioner pipelines (FSAI/FSAIE/FSAIE-Comm)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    FilterSpec,
    PrecondOptions,
    build_fsai,
    build_fsaie,
    build_fsaie_comm,
    check_comm_invariance,
    fsai_pattern,
    pcg,
)
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.matgen import paper_rhs, poisson2d
from repro.mpisim import CommTracker


@pytest.fixture(scope="module")
def setup():
    mat = poisson2d(24)
    part = RowPartition.from_matrix(mat, 4, seed=0)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, seed=42), part)
    return mat, part, da, b


OPTS = PrecondOptions(line_bytes=64, filter=FilterSpec(0.01, dynamic=True))


class TestBuilders:
    def test_fsai_baseline_matches_pattern(self, setup):
        mat, part, _, _ = setup
        pre = build_fsai(mat, part)
        assert pre.name == "FSAI"
        assert pre.nnz == fsai_pattern(mat).nnz
        assert pre.nnz_increase_percent == 0.0

    def test_transpose_pair_consistency(self, setup):
        mat, part, _, _ = setup
        for build in (build_fsai, build_fsaie, build_fsaie_comm):
            pre = build(mat, part, OPTS)
            g = pre.g.to_global()
            gt = pre.gt.to_global()
            assert gt.allclose(g.transpose())

    def test_extended_patterns_grow(self, setup):
        mat, part, _, _ = setup
        fsai = build_fsai(mat, part, OPTS)
        fsaie = build_fsaie(mat, part, OPTS)
        comm = build_fsaie_comm(mat, part, OPTS)
        assert fsaie.nnz > fsai.nnz
        assert comm.nnz >= fsaie.nnz
        assert comm.nnz_increase_percent >= fsaie.nnz_increase_percent > 0

    def test_unfiltered_extension_recorded(self, setup):
        mat, part, _, _ = setup
        pre = build_fsaie_comm(mat, part, OPTS)
        assert pre.ext_nnz_unfiltered >= pre.nnz - pre.base_nnz
        assert sum(e.n_added for e in pre.extensions) == pre.ext_nnz_unfiltered

    def test_stronger_filter_smaller_pattern(self, setup):
        mat, part, _, _ = setup
        sizes = []
        for f in (0.0, 0.05, 0.5):
            opts = PrecondOptions(filter=FilterSpec(f, dynamic=False))
            sizes.append(build_fsaie_comm(mat, part, opts).nnz)
        assert sizes[0] >= sizes[1] >= sizes[2]

    def test_base_entries_never_filtered(self, setup):
        mat, part, _, _ = setup
        opts = PrecondOptions(filter=FilterSpec(1e9, dynamic=False))  # drop all ext
        pre = build_fsaie_comm(mat, part, opts)
        assert pre.nnz == pre.base_nnz

    def test_apply_is_gtg(self, setup, rng):
        mat, part, _, _ = setup
        pre = build_fsaie_comm(mat, part, OPTS)
        r = rng.standard_normal(mat.nrows)
        dr = DistVector.from_global(r, part)
        z = pre.apply(dr).to_global()
        g = pre.g.to_global().to_dense()
        assert np.allclose(z, g.T @ (g @ r))

    def test_flops_per_apply(self, setup):
        mat, part, _, _ = setup
        pre = build_fsai(mat, part)
        assert pre.flops_per_apply() == 2 * (pre.g.nnz + pre.gt.nnz)


class TestCommInvariance:
    """The central claim: extensions leave the communication scheme unchanged."""

    def test_fsaie_and_comm_are_invariant(self, setup):
        mat, part, _, _ = setup
        base = build_fsai(mat, part, OPTS)
        for build in (build_fsaie, build_fsaie_comm):
            ext = build(mat, part, OPTS)
            assert check_comm_invariance(base, ext)

    def test_invariance_across_line_sizes(self, setup):
        mat, part, _, _ = setup
        base = build_fsai(mat, part)
        for line_bytes in (64, 128, 256):
            opts = PrecondOptions(line_bytes=line_bytes, filter=FilterSpec(0.0, dynamic=False))
            ext = build_fsaie_comm(mat, part, opts)
            assert check_comm_invariance(base, ext)

    def test_measured_traffic_identical(self, setup, rng):
        """Beyond schedule equality: the actual bytes on the wire match."""
        mat, part, da, _ = setup
        base = build_fsai(mat, part, OPTS)
        ext = build_fsaie_comm(mat, part, OPTS)
        r = DistVector.from_global(rng.standard_normal(mat.nrows), part)
        t_base, t_ext = CommTracker(), CommTracker()
        base.apply(r, t_base)
        ext.apply(r, t_ext)
        assert t_base.snapshot()["p2p_bytes"] == t_ext.snapshot()["p2p_bytes"]

    def test_level2_fsai_does_change_traffic(self, setup):
        """Contrast case: growing the pattern numerically (level 2) without
        comm awareness increases communication."""
        from repro.core import FSAIOptions

        mat, part, _, _ = setup
        base = build_fsai(mat, part)
        level2 = build_fsai(mat, part, PrecondOptions(fsai=FSAIOptions(level=2)))
        assert not check_comm_invariance(base, level2)


class TestSolverQuality:
    def test_paper_ordering_of_iterations(self, setup):
        """FSAIE-Comm ≤ FSAIE ≤ FSAI iterations on the paper's protocol
        (allowing a small tolerance for the middle comparison)."""
        mat, part, da, b = setup
        iters = {}
        for build in (build_fsai, build_fsaie, build_fsaie_comm):
            pre = build(mat, part, OPTS)
            res = pcg(da, b, precond=pre.apply)
            assert res.converged
            iters[pre.name] = res.iterations
        assert iters["FSAIE"] < iters["FSAI"]
        assert iters["FSAIE-Comm"] <= iters["FSAIE"] * 1.05

    def test_all_preconditioners_reach_same_solution(self, setup):
        mat, part, da, b = setup
        solutions = []
        for build in (build_fsai, build_fsaie, build_fsaie_comm):
            pre = build(mat, part, OPTS)
            solutions.append(pcg(da, b, precond=pre.apply, rtol=1e-10).x.to_global())
        for s in solutions[1:]:
            assert np.allclose(s, solutions[0], atol=1e-6)
