"""Unit tests for CG convergence analysis (Ritz values, rates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    SpectralEstimate,
    convergence_rate,
    lanczos_tridiagonal,
)
from repro.core import build_fsai, build_fsaie_comm, cg, pcg
from repro.dist import DistMatrix, DistVector, RowPartition
from repro.matgen import paper_rhs, poisson2d


@pytest.fixture(scope="module")
def solved():
    mat = poisson2d(12)
    part = RowPartition.contiguous(mat.nrows, 2)
    da = DistMatrix.from_global(mat, part)
    b = DistVector.from_global(paper_rhs(mat, 0), part)
    return mat, part, da, b


class TestLanczos:
    def test_tridiagonal_shape(self):
        t = lanczos_tridiagonal([0.5, 0.4, 0.3], [0.2, 0.1])
        assert t.shape == (3, 3)
        assert np.allclose(t, t.T)

    def test_one_step(self):
        t = lanczos_tridiagonal([0.25], [])
        assert t.shape == (1, 1)
        assert t[0, 0] == 4.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            lanczos_tridiagonal([], [])
        with pytest.raises(ValueError):
            lanczos_tridiagonal([0.5, 0.5], [0.1, 0.1])  # too many betas
        with pytest.raises(ValueError):
            lanczos_tridiagonal([0.0], [])


class TestSpectralEstimates:
    def test_recovers_true_spectrum_of_poisson(self, solved):
        mat, _, da, b = solved
        result = cg(da, b, rtol=1e-12)
        est = result.spectral_estimate()
        w = np.linalg.eigvalsh(mat.to_dense())
        assert est.lambda_max == pytest.approx(w[-1], rel=1e-3)
        assert est.lambda_min == pytest.approx(w[0], rel=0.05)
        assert est.condition_number == pytest.approx(w[-1] / w[0], rel=0.06)

    def test_fsai_lowers_estimated_condition(self, solved):
        mat, part, da, b = solved
        plain = cg(da, b, rtol=1e-12).spectral_estimate()
        pre = build_fsai(mat, part)
        precond = pcg(da, b, precond=pre.apply, rtol=1e-12).spectral_estimate()
        assert precond.condition_number < plain.condition_number

    def test_extension_lowers_condition_further(self, solved):
        mat, part, da, b = solved
        fsai = build_fsai(mat, part)
        comm = build_fsaie_comm(mat, part)
        c_fsai = pcg(da, b, precond=fsai.apply, rtol=1e-12).spectral_estimate()
        c_comm = pcg(da, b, precond=comm.apply, rtol=1e-12).spectral_estimate()
        assert c_comm.condition_number <= c_fsai.condition_number * 1.05

    def test_ritz_values_sorted_and_positive(self, solved):
        _, _, da, b = solved
        est = cg(da, b, rtol=1e-10).spectral_estimate()
        assert np.all(np.diff(est.ritz_values) >= 0)
        assert est.ritz_values[0] > 0

    def test_singular_estimate_condition(self):
        est = SpectralEstimate(0.0, 1.0, np.array([0.0, 1.0]))
        assert est.condition_number == float("inf")


class TestConvergenceRate:
    def test_geometric_series(self):
        hist = [1.0 * 0.5**k for k in range(10)]
        assert convergence_rate(hist) == pytest.approx(0.5)

    def test_better_preconditioner_better_rate(self, solved):
        mat, part, da, b = solved
        plain = cg(da, b)
        pre = build_fsai(mat, part)
        precond = pcg(da, b, precond=pre.apply)
        assert convergence_rate(precond.residual_norms) < convergence_rate(
            plain.residual_norms
        )

    def test_degenerate_inputs(self):
        assert convergence_rate([]) == 1.0
        assert convergence_rate([5.0]) == 1.0
        assert convergence_rate([0.0, 0.0]) == 1.0
